// Tests for early termination (request cancellation): the serving-side
// analogue of stopping Seq2Seq decoding at <eos> (paper §7.4 notes deployed
// systems do exactly this).

#include <gtest/gtest.h>

#include <future>
#include <map>
#include <memory>

#include "src/core/server.h"
#include "src/core/sim_engine.h"
#include "tests/test_models.h"

namespace batchmaker {
namespace {

// Harness mirroring scheduler_test's, with completion tracking.
class CancelHarness {
 public:
  explicit CancelHarness(const CellRegistry* registry, SchedulerOptions options = {}) {
    processor_ = std::make_unique<RequestProcessor>(
        registry, [this](Subgraph* sg) { scheduler_->EnqueueSubgraph(sg); },
        [this](RequestState* state) { completed_.push_back(state->id); });
    scheduler_ = std::make_unique<Scheduler>(registry, processor_.get(), options);
  }

  RequestProcessor& processor() { return *processor_; }
  Scheduler& scheduler() { return *scheduler_; }
  const std::vector<RequestId>& completed() const { return completed_; }

  int RunAll(int worker = 0) {
    int executed = 0;
    for (;;) {
      const auto tasks = scheduler_->Schedule(worker);
      if (tasks.empty()) {
        return executed;
      }
      for (const auto& t : tasks) {
        executed += t.BatchSize();
        scheduler_->OnTaskCompleted(t);
      }
    }
  }

 private:
  std::unique_ptr<RequestProcessor> processor_;
  std::unique_ptr<Scheduler> scheduler_;
  std::vector<RequestId> completed_;
};

TEST(CancelTest, CancelIdleRequestFinalizesImmediately) {
  TinyLstmFixture fix;
  CancelHarness h(&fix.registry);
  h.processor().AddRequest(1, fix.model.Unfold(10), 0.0);
  const int cancelled = h.scheduler().CancelRequest(1);
  EXPECT_EQ(cancelled, 10);
  EXPECT_EQ(h.completed(), std::vector<RequestId>{1});
  EXPECT_EQ(h.processor().NumActiveRequests(), 0u);
  EXPECT_FALSE(h.scheduler().HasReadyWork());
  // Nothing left to run.
  EXPECT_EQ(h.RunAll(), 0);
}

TEST(CancelTest, CancelUnknownRequestIsNoop) {
  TinyLstmFixture fix;
  CancelHarness h(&fix.registry);
  EXPECT_EQ(h.scheduler().CancelRequest(77), 0);
}

TEST(CancelTest, CancelWithInflightWaitsForCompletion) {
  TinyLstmFixture fix;
  CancelHarness h(&fix.registry, SchedulerOptions{.max_tasks_to_submit = 2});
  h.processor().AddRequest(1, fix.model.Unfold(10), 0.0);
  const auto tasks = h.scheduler().Schedule(0);  // steps 0 and 1 in flight
  ASSERT_EQ(tasks.size(), 2u);

  const int cancelled = h.scheduler().CancelRequest(1);
  EXPECT_EQ(cancelled, 8);  // steps 2..9
  // Not finalized yet: two nodes are still in flight.
  EXPECT_TRUE(h.completed().empty());
  EXPECT_EQ(h.processor().NumActiveRequests(), 1u);

  h.scheduler().OnTaskCompleted(tasks[0]);
  EXPECT_TRUE(h.completed().empty());
  h.scheduler().OnTaskCompleted(tasks[1]);
  EXPECT_EQ(h.completed(), std::vector<RequestId>{1});
  EXPECT_EQ(h.processor().NumActiveRequests(), 0u);
  EXPECT_EQ(h.RunAll(), 0);
}

TEST(CancelTest, CancelOneRequestLeavesOthersIntact) {
  TinyLstmFixture fix;
  CancelHarness h(&fix.registry);
  h.processor().AddRequest(1, fix.model.Unfold(6), 0.0);
  h.processor().AddRequest(2, fix.model.Unfold(6), 0.0);
  h.scheduler().CancelRequest(1);
  const int executed = h.RunAll();
  EXPECT_EQ(executed, 6);  // only request 2's cells ran
  EXPECT_EQ(h.completed().size(), 2u);
}

TEST(CancelTest, ReadyNodeAccountingStaysConsistent) {
  TinyLstmFixture fix;
  CancelHarness h(&fix.registry);
  const CellTypeId ct = fix.model.cell_type();
  h.processor().AddRequest(1, fix.model.Unfold(4), 0.0);
  h.processor().AddRequest(2, fix.model.Unfold(4), 0.0);
  EXPECT_EQ(h.scheduler().NumReadyNodes(ct), 2);
  h.scheduler().CancelRequest(1);
  EXPECT_EQ(h.scheduler().NumReadyNodes(ct), 1);
  h.RunAll();
  EXPECT_EQ(h.scheduler().NumReadyNodes(ct), 0);
}

TEST(CancelTest, UnreleasedSubgraphNeverReleases) {
  // Cancel a Seq2Seq request while encoding: the decoder subgraph (not yet
  // released) must be cancelled outright and never reach the scheduler.
  TinySeq2SeqFixture fix;
  CancelHarness h(&fix.registry, SchedulerOptions{.max_tasks_to_submit = 1});
  h.processor().AddRequest(1, fix.model.Unfold(3, 5), 0.0);
  const auto tasks = h.scheduler().Schedule(0);  // encoder step 0 in flight
  ASSERT_EQ(tasks.size(), 1u);

  const int cancelled = h.scheduler().CancelRequest(1);
  EXPECT_EQ(cancelled, 2 + 5);  // encoder steps 1-2 + all 5 decoder steps
  h.scheduler().OnTaskCompleted(tasks[0]);
  EXPECT_EQ(h.completed(), std::vector<RequestId>{1});
  // The decoder type never sees work.
  EXPECT_EQ(h.scheduler().NumReadyNodes(fix.model.decoder_type()), 0);
  EXPECT_EQ(h.RunAll(), 0);
}

TEST(CancelTest, TreeInternalSubgraphCancelledBeforeRelease) {
  TinyTreeLstmFixture fix;
  CancelHarness h(&fix.registry);
  h.processor().AddRequest(1, fix.model.Unfold(BinaryTree::Complete(8)), 0.0);
  // Run the leaf task only.
  auto tasks = h.scheduler().Schedule(0);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].BatchSize(), 8);
  const int cancelled = h.scheduler().CancelRequest(1);
  EXPECT_EQ(cancelled, 7);  // the internal nodes
  h.scheduler().OnTaskCompleted(tasks[0]);
  EXPECT_EQ(h.completed(), std::vector<RequestId>{1});
  EXPECT_EQ(h.RunAll(), 0);
}

TEST(CancelTest, DoubleCancelIsIdempotent) {
  TinyLstmFixture fix;
  CancelHarness h(&fix.registry, SchedulerOptions{.max_tasks_to_submit = 1});
  h.processor().AddRequest(1, fix.model.Unfold(5), 0.0);
  const auto tasks = h.scheduler().Schedule(0);
  EXPECT_EQ(h.scheduler().CancelRequest(1), 4);
  EXPECT_EQ(h.scheduler().CancelRequest(1), 0);
  h.scheduler().OnTaskCompleted(tasks[0]);
  EXPECT_EQ(h.scheduler().CancelRequest(1), 0);  // already finalized
  EXPECT_EQ(h.completed().size(), 1u);
}

// ---------- SimEngine terminate_after_node ----------

TEST(CancelSimTest, EarlyTerminationShortensLatency) {
  TinyLstmFixture fix;
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), UnitCostCurve());
  SimEngineOptions options;
  options.scheduler.max_tasks_to_submit = 1;
  SimEngine engine(&fix.registry, &cost, options);
  // 30-step chain that "emits <eos>" after node 4.
  engine.SubmitAt(0.0, fix.model.Unfold(30), SubmitOptions{.terminate_after_node = 4});
  engine.Run();
  ASSERT_EQ(engine.metrics().NumCompleted(), 1u);
  // Completes right after the 5th unit-cost step (pipelining may have a
  // couple of extra steps in flight with max_tasks 1 -> none here).
  EXPECT_DOUBLE_EQ(engine.metrics().records()[0].completion_micros, 5.0);
  EXPECT_EQ(engine.workers().ItemsExecuted(0), 5);
}

TEST(CancelSimTest, PipelinedInflightStepsStillExecute) {
  TinyLstmFixture fix;
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), UnitCostCurve());
  SimEngineOptions options;
  options.scheduler.max_tasks_to_submit = 5;  // steps run ahead of completions
  SimEngine engine(&fix.registry, &cost, options);
  engine.SubmitAt(0.0, fix.model.Unfold(30), SubmitOptions{.terminate_after_node = 2});
  engine.Run();
  ASSERT_EQ(engine.metrics().NumCompleted(), 1u);
  // With a pipeline depth of 5, up to 5 steps were submitted before the
  // terminating node completed; those run, the remaining 25 never do.
  EXPECT_GE(engine.workers().ItemsExecuted(0), 3);
  EXPECT_LE(engine.workers().ItemsExecuted(0), 30 - 20);
}

TEST(CancelSimTest, MixedTerminatedAndFullRequests) {
  TinyLstmFixture fix;
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), UnitCostCurve());
  SimEngineOptions options;
  options.scheduler.max_tasks_to_submit = 1;
  SimEngine engine(&fix.registry, &cost, options);
  engine.SubmitAt(0.0, fix.model.Unfold(10), SubmitOptions{.terminate_after_node = 1});
  engine.SubmitAt(0.0, fix.model.Unfold(10));
  engine.Run();
  std::map<RequestId, double> done;
  for (const auto& r : engine.metrics().records()) {
    done[r.id] = r.completion_micros;
  }
  EXPECT_DOUBLE_EQ(done[1], 2.0);
  EXPECT_DOUBLE_EQ(done[2], 10.0);
  EXPECT_EQ(engine.workers().ItemsExecuted(0), 2 + 10);
}

// ---------- Queue-timeout load shedding ----------

TEST(LoadSheddingTest, LateRequestIsDroppedNotServed) {
  TinyLstmFixture fix;
  fix.registry.SetMaxBatch(fix.model.cell_type(), 1);  // serialize requests
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), CostCurve({{1, 100.0}}));
  SimEngineOptions options;
  options.scheduler.max_tasks_to_submit = 1;
  options.admission.queue_timeout_micros = 150.0;
  SimEngine engine(&fix.registry, &cost, options);
  // Request 1 occupies the worker for 1000us; request 2 arrives at t=10
  // and cannot start within 150us -> dropped.
  engine.SubmitAt(0.0, fix.model.Unfold(10));
  engine.SubmitAt(10.0, fix.model.Unfold(10));
  engine.Run();
  EXPECT_EQ(engine.metrics().NumCompleted(), 1u);
  EXPECT_EQ(engine.metrics().NumDropped(), 1u);
  EXPECT_EQ(engine.metrics().records()[0].id, 1u);
  // The dropped request consumed no worker time beyond request 1's cells.
  EXPECT_EQ(engine.workers().ItemsExecuted(0), 10);
}

TEST(LoadSheddingTest, NoDropsUnderLightLoad) {
  TinyLstmFixture fix;
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), UnitCostCurve());
  SimEngineOptions options;
  options.admission.queue_timeout_micros = 1000.0;
  SimEngine engine(&fix.registry, &cost, options);
  for (int i = 0; i < 5; ++i) {
    engine.SubmitAt(i * 100.0, fix.model.Unfold(5));
  }
  engine.Run();
  EXPECT_EQ(engine.metrics().NumCompleted(), 5u);
  EXPECT_EQ(engine.metrics().NumDropped(), 0u);
}

TEST(LoadSheddingTest, ExecutingRequestIsNeverShed) {
  TinyLstmFixture fix;
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), CostCurve({{1, 100.0}}));
  SimEngineOptions options;
  options.scheduler.max_tasks_to_submit = 1;
  // Timeout far shorter than the request's total runtime: it must still
  // finish because execution started before the deadline.
  options.admission.queue_timeout_micros = 150.0;
  SimEngine engine(&fix.registry, &cost, options);
  engine.SubmitAt(0.0, fix.model.Unfold(20));  // runs 2000us, starts at 0
  engine.Run();
  EXPECT_EQ(engine.metrics().NumCompleted(), 1u);
  EXPECT_EQ(engine.metrics().NumDropped(), 0u);
}

// ---------- Server TerminationFn ----------

TEST(CancelServerTest, DecoderStopsAtPredicate) {
  TinySeq2SeqFixture fix;
  Server server(&fix.registry);
  server.Start();

  const int src_len = 2;
  const int max_dec = 8;
  const CellGraph graph = fix.model.Unfold(src_len, max_dec);
  std::vector<Tensor> externals;
  externals.push_back(ExternalTokenTensor(3));
  externals.push_back(ExternalTokenTensor(9));
  externals.push_back(ExternalTokenTensor(0));  // <go>
  externals.push_back(ExternalZeroVecTensor(4));
  externals.push_back(ExternalZeroVecTensor(4));

  std::vector<ValueRef> wanted;
  for (int t = 0; t < max_dec; ++t) {
    wanted.push_back(ValueRef::Output(src_len + t, 2));
  }

  std::promise<std::vector<Tensor>> promise;
  auto future = promise.get_future();
  // Stop decoding after the 3rd decoder step, regardless of token value
  // (a content-based <eos> check would read the node's token output from
  // the state exactly the same way).
  server.Submit(CellGraph(graph), std::move(externals), wanted,
                [&promise](RequestId, RequestStatus, std::vector<Tensor> outputs) {
                  promise.set_value(std::move(outputs));
                },
                SubmitOptions{},
                [src_len](const RequestState&, int completed_node) {
                  return completed_node >= src_len + 2;
                });
  const auto outputs = future.get();
  server.Shutdown();
  // Only the executed decoder steps are returned.
  EXPECT_GE(outputs.size(), 3u);
  EXPECT_LT(outputs.size(), static_cast<size_t>(max_dec));
}

TEST(CancelServerTest, ContentBasedEosStopsDecoding) {
  TinySeq2SeqFixture fix;
  Server server(&fix.registry);
  server.Start();

  const int src_len = 2;
  const int max_dec = 10;
  const CellGraph graph = fix.model.Unfold(src_len, max_dec);

  // Run once without termination to learn which tokens get emitted.
  std::vector<Tensor> externals;
  externals.push_back(ExternalTokenTensor(3));
  externals.push_back(ExternalTokenTensor(9));
  externals.push_back(ExternalTokenTensor(0));
  externals.push_back(ExternalZeroVecTensor(4));
  externals.push_back(ExternalZeroVecTensor(4));
  std::vector<ValueRef> wanted;
  for (int t = 0; t < max_dec; ++t) {
    wanted.push_back(ValueRef::Output(src_len + t, 2));
  }
  const Response full = server.SubmitAndWait(CellGraph(graph), externals, wanted);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full.outputs.size(), static_cast<size_t>(max_dec));
  // Treat the token emitted at decoder step 2 as "<eos>".
  const int32_t eos = full.outputs[2].IntAt(0, 0);

  std::vector<Tensor> externals2;
  externals2.push_back(ExternalTokenTensor(3));
  externals2.push_back(ExternalTokenTensor(9));
  externals2.push_back(ExternalTokenTensor(0));
  externals2.push_back(ExternalZeroVecTensor(4));
  externals2.push_back(ExternalZeroVecTensor(4));
  std::promise<std::vector<Tensor>> promise;
  auto future = promise.get_future();
  server.Submit(CellGraph(graph), std::move(externals2), wanted,
                [&promise](RequestId, RequestStatus, std::vector<Tensor> outputs) {
                  promise.set_value(std::move(outputs));
                },
                SubmitOptions{},
                [src_len, eos](const RequestState& state, int completed_node) {
                  if (completed_node < src_len) {
                    return false;  // still encoding
                  }
                  const auto& outs =
                      state.node_outputs[static_cast<size_t>(completed_node)];
                  return outs[2].IntAt(0, 0) == eos;
                });
  const auto stopped = future.get();
  server.Shutdown();
  // Decoding is deterministic, so the same token appears at step 2 and
  // decoding stops; in-flight pipelined steps may still have run.
  EXPECT_GE(stopped.size(), 3u);
  EXPECT_LE(stopped.size(), static_cast<size_t>(max_dec));
  EXPECT_EQ(stopped[2].IntAt(0, 0), eos);
}

}  // namespace
}  // namespace batchmaker
