// Cost model unit tests: CostCurve extrapolation in both directions and
// the OnlineCostModel calibration loop (EWMA buckets re-fitted into the
// log-log anchor representation).
//
// The calibration accuracy bound asserted here — fitted predictions within
// 10% of the true device latency at every power-of-two batch once enough
// observations have landed — is the documented error bound for slack-aware
// batch formation (DESIGN.md "SLA-aware batch formation"): the slack
// policy's launch instants are only as good as TaskMicros, so this test is
// the contract that keeps them honest.

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "src/runtime/cost_model.h"
#include "src/runtime/online_cost_model.h"

namespace batchmaker {
namespace {

// ---------- CostCurve extrapolation, both directions ----------

TEST(CostCurveExtrapolationTest, BelowFirstAnchorClampsToFirstCost) {
  // First anchor at batch 64: queries below it must return the first
  // anchor's cost, not extrapolate the first segment's slope downward
  // (which would undershoot any physically measurable floor once online
  // calibration moves the anchors).
  const CostCurve curve({{64, 200.0}, {512, 800.0}});
  EXPECT_DOUBLE_EQ(curve.Micros(1), 200.0);
  EXPECT_DOUBLE_EQ(curve.Micros(32), 200.0);
  EXPECT_DOUBLE_EQ(curve.Micros(63), 200.0);
  EXPECT_DOUBLE_EQ(curve.Micros(64), 200.0);
}

TEST(CostCurveExtrapolationTest, AboveLastAnchorContinuesLastSlope) {
  // Last segment doubles micros per doubling of batch (log-log slope 1);
  // extrapolation above the last anchor continues that slope.
  const CostCurve curve({{64, 200.0}, {256, 400.0}, {512, 800.0}});
  EXPECT_NEAR(curve.Micros(1024), 1600.0, 1e-6);
  EXPECT_NEAR(curve.Micros(2048), 3200.0, 1e-6);
}

TEST(CostCurveExtrapolationTest, BelowRangeNeverExceedsInRangeCost) {
  // Monotonicity across the clamp boundary: the clamped region is flat at
  // the first anchor's cost, so cost as a function of batch stays
  // non-decreasing over the whole query range.
  const CostCurve curve = GpuLstmCurve();
  double prev = 0.0;
  for (int b = 1; b <= 4096; b *= 2) {
    const double micros = curve.Micros(b);
    EXPECT_GE(micros, prev) << "batch " << b;
    prev = micros;
  }
}

// ---------- OnlineCostModel ----------

// The synthetic "true device": flat floor of 100us up to batch 8, then
// linear growth — deliberately NOT expressible by the seed curve below, so
// convergence proves the fit tracks observations, not the seed.
double TrueDeviceMicros(int batch) {
  return 100.0 + 12.5 * std::max(0, batch - 8);
}

TEST(OnlineCostModelTest, UncalibratedFallsBackToSeedCurve) {
  OnlineCostModel model;
  model.SetCurve(7, CostCurve({{1, 42.0}}));
  EXPECT_FALSE(model.Calibrated(7));
  EXPECT_DOUBLE_EQ(model.TaskMicros(7, 4), 42.0);
}

TEST(OnlineCostModelTest, UnknownTypeGetsGenericEstimateNotCrash) {
  // Never-seeded, never-observed type: answered from the generic CPU LSTM
  // curve so the scheduler can always plan.
  OnlineCostModel model;
  EXPECT_FALSE(model.Calibrated(99));
  EXPECT_GT(model.TaskMicros(99, 1), 0.0);
}

TEST(OnlineCostModelTest, RefitsEveryIntervalAndFiresCallback) {
  OnlineCostModelOptions opts;
  opts.refit_interval = 8;
  OnlineCostModel model(opts);

  std::vector<std::pair<CellTypeId, int64_t>> refit_log;
  model.set_on_refit([&](CellTypeId type, int num_anchors, int64_t observations) {
    EXPECT_GT(num_anchors, 0);
    refit_log.emplace_back(type, observations);
  });

  for (int i = 0; i < 24; ++i) {
    model.Observe(3, 4, 100.0);
  }
  EXPECT_EQ(model.Observations(3), 24);
  EXPECT_EQ(model.Refits(), 3);
  ASSERT_EQ(refit_log.size(), 3u);
  EXPECT_EQ(refit_log[0], std::make_pair(CellTypeId{3}, int64_t{8}));
  EXPECT_EQ(refit_log[2], std::make_pair(CellTypeId{3}, int64_t{24}));
  EXPECT_TRUE(model.Calibrated(3));
}

TEST(OnlineCostModelTest, NonPositiveSamplesIgnored) {
  OnlineCostModel model;
  model.Observe(0, 4, 0.0);
  model.Observe(0, 4, -5.0);
  model.Observe(0, 0, 100.0);
  EXPECT_EQ(model.Observations(0), 0);
}

TEST(OnlineCostModelTest, CalibrationConvergesWithinTenPercent) {
  // Seed with a deliberately wrong curve (10x too expensive, wrong shape),
  // then stream noiseless measurements of the true device at the batch
  // sizes a serving loop actually produces. After calibration, predictions
  // at every observed power-of-two batch must land within 10% of truth —
  // the documented error bound for slack-aware launch-instant estimates.
  OnlineCostModelOptions opts;
  opts.refit_interval = 16;
  OnlineCostModel model(opts);
  model.SetCurve(0, CostCurve({{1, 1000.0}, {512, 2000.0}}));

  const std::vector<int> batches = {1, 2, 4, 8, 16, 32, 64};
  for (int round = 0; round < 32; ++round) {
    for (const int b : batches) {
      model.Observe(0, b, TrueDeviceMicros(b));
    }
  }
  ASSERT_TRUE(model.Calibrated(0));

  for (const int b : batches) {
    const double predicted = model.TaskMicros(0, b);
    const double truth = TrueDeviceMicros(b);
    EXPECT_NEAR(predicted, truth, 0.10 * truth)
        << "batch " << b << ": predicted " << predicted << " vs true " << truth;
  }
  // And the calibrated curve has displaced the (wrong) seed entirely: the
  // seed said 1000us at batch 1, the device says 100us.
  EXPECT_LT(model.TaskMicros(0, 1), 200.0);
}

TEST(OnlineCostModelTest, FittedAnchorsAreStrictlyIncreasingInBatch) {
  // One anchor per populated power-of-two bucket; the bucket EWMA batch
  // lives inside [2^i, 2^(i+1)), so anchors come out strictly increasing —
  // the invariant CostCurve's constructor enforces.
  OnlineCostModelOptions opts;
  opts.refit_interval = 4;
  OnlineCostModel model(opts);
  for (const int b : {1, 3, 6, 12, 24, 48, 100, 300}) {
    for (int i = 0; i < 4; ++i) {
      model.Observe(5, b, TrueDeviceMicros(b));
    }
  }
  ASSERT_TRUE(model.Calibrated(5));
  const CostCurve fitted = model.FittedCurve(5);
  const auto& anchors = fitted.anchors();
  ASSERT_GE(anchors.size(), 2u);
  for (size_t i = 1; i < anchors.size(); ++i) {
    EXPECT_LT(anchors[i - 1].first, anchors[i].first);
  }
}

TEST(OnlineCostModelTest, OverheadsApplyOnTopOfFittedCurve) {
  // Per-task and per-item overheads are CostModel policy, orthogonal to
  // which curve answers: they must apply to calibrated answers too.
  OnlineCostModelOptions opts;
  opts.refit_interval = 4;
  OnlineCostModel model(opts);
  model.SetPerTaskOverheadMicros(40.0);
  model.SetPerItemOverheadMicros(0.5);
  for (int i = 0; i < 4; ++i) {
    model.Observe(0, 4, 100.0);
  }
  ASSERT_TRUE(model.Calibrated(0));
  EXPECT_NEAR(model.TaskMicros(0, 4), 100.0 + 40.0 + 0.5 * 4, 1.0);
}

}  // namespace
}  // namespace batchmaker
