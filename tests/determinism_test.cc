// The determinism contract, end to end: the threaded Server with an
// intra-task ThreadPool (threads_per_worker > 1) and worker-local arenas
// must produce request outputs bitwise identical to the single-threaded
// SyncEngine. Batching, thread count, and arena recycling may change *how*
// the numbers are computed, never *which* numbers come out.

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "src/core/server.h"
#include "src/core/sync_engine.h"
#include "src/nn/lstm.h"
#include "src/util/rng.h"
#include "tests/test_models.h"

namespace batchmaker {
namespace {

// Hidden size 40 -> gate GEMMs are [b, 80] x [80, 160]: ten 16-wide B
// panels, so the pooled GEMM actually takes its parallel partition, and
// batch sizes reach 2 * threads so gather/scatter fan out too.
struct WideLstmFixture {
  WideLstmFixture()
      : rng(4321), model(&registry, LstmSpec{.input_dim = 24, .hidden = 40}, &rng) {}

  CellRegistry registry;
  Rng rng;
  LstmModel model;
};

struct RequestSpec {
  int length;
  std::vector<Tensor> xs;  // one [1, input_dim] tensor per step
};

std::vector<RequestSpec> MakeRequests(int count, int64_t input_dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<RequestSpec> reqs;
  reqs.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    RequestSpec spec;
    spec.length = 1 + static_cast<int>(rng.NextBelow(8));
    for (int t = 0; t < spec.length; ++t) {
      spec.xs.push_back(Tensor::RandomUniform(Shape{1, input_dim}, 1.0f, &rng));
    }
    reqs.push_back(std::move(spec));
  }
  return reqs;
}

std::vector<Tensor> ChainExternals(const RequestSpec& spec, int64_t hidden) {
  std::vector<Tensor> ext = spec.xs;
  ext.push_back(ExternalZeroVecTensor(hidden));
  ext.push_back(ExternalZeroVecTensor(hidden));
  return ext;
}

TEST(DeterminismTest, ThreadedServerMatchesSyncEngineBitwise) {
  constexpr int kRequests = 24;
  constexpr int64_t kInputDim = 24;
  constexpr int64_t kHidden = 40;
  const auto requests = MakeRequests(kRequests, kInputDim, /*seed=*/77);

  // Reference: the serial engine (no pool, arena-backed scratch).
  WideLstmFixture ref_fix;
  std::vector<std::vector<Tensor>> ref_outputs(kRequests);
  {
    SyncEngine engine(&ref_fix.registry);
    std::vector<RequestId> ids;
    for (const RequestSpec& spec : requests) {
      ids.push_back(engine.Submit(ref_fix.model.Unfold(spec.length),
                                  ChainExternals(spec, kHidden),
                                  {ValueRef::Output(spec.length - 1, 0),
                                   ValueRef::Output(spec.length - 1, 1)}));
    }
    engine.RunToCompletion();
    for (int i = 0; i < kRequests; ++i) {
      ref_outputs[static_cast<size_t>(i)] =
          engine.TakeResponse(ids[static_cast<size_t>(i)]).outputs;
    }
  }

  // Same weights: a fixture constructed with the same seed re-registers a
  // bit-identical model in a fresh registry, so the two engines cannot
  // share mutable state.
  WideLstmFixture srv_fix;
  ASSERT_EQ(srv_fix.registry.executor(srv_fix.model.cell_type()).NumPackedWeights(),
            ref_fix.registry.executor(ref_fix.model.cell_type()).NumPackedWeights());

  ServerOptions options;
  options.num_workers = 2;
  options.threads_per_worker = 4;
  Server server(&srv_fix.registry, options);
  server.Start();

  std::vector<std::promise<std::vector<Tensor>>> promises(kRequests);
  std::vector<std::future<std::vector<Tensor>>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(promises[static_cast<size_t>(i)].get_future());
  }
  for (int i = 0; i < kRequests; ++i) {
    const RequestSpec& spec = requests[static_cast<size_t>(i)];
    auto* promise = &promises[static_cast<size_t>(i)];
    server.Submit(srv_fix.model.Unfold(spec.length), ChainExternals(spec, kHidden),
                  {ValueRef::Output(spec.length - 1, 0),
                   ValueRef::Output(spec.length - 1, 1)},
                  [promise](RequestId, RequestStatus, std::vector<Tensor> outputs) {
                    promise->set_value(std::move(outputs));
                  });
  }
  for (int i = 0; i < kRequests; ++i) {
    const std::vector<Tensor> outputs = futures[static_cast<size_t>(i)].get();
    const std::vector<Tensor>& want = ref_outputs[static_cast<size_t>(i)];
    ASSERT_EQ(outputs.size(), want.size()) << "request " << i;
    for (size_t j = 0; j < outputs.size(); ++j) {
      // Bitwise, not approximately: ElementsEqual is an exact memcmp.
      EXPECT_TRUE(outputs[j].ElementsEqual(want[j]))
          << "request " << i << " output " << j
          << " differs between threaded server and sync engine";
    }
  }
  server.Shutdown();
}

TEST(DeterminismTest, PipelinedStreamsMatchSyncEngineBitwiseAtAnyDepth) {
  // The pipelined worker streams (watermark refill + overlapped
  // gather/execute/scatter) must not perturb a single bit: at every
  // pipeline_depth x num_workers combination the server's outputs equal
  // the serial SyncEngine's exactly.
  constexpr int kRequests = 20;
  constexpr int64_t kInputDim = 24;
  constexpr int64_t kHidden = 40;
  const auto requests = MakeRequests(kRequests, kInputDim, /*seed=*/55);

  WideLstmFixture ref_fix;
  std::vector<std::vector<Tensor>> ref_outputs(kRequests);
  {
    SyncEngine engine(&ref_fix.registry);
    std::vector<RequestId> ids;
    for (const RequestSpec& spec : requests) {
      ids.push_back(engine.Submit(ref_fix.model.Unfold(spec.length),
                                  ChainExternals(spec, kHidden),
                                  {ValueRef::Output(spec.length - 1, 0),
                                   ValueRef::Output(spec.length - 1, 1)}));
    }
    engine.RunToCompletion();
    for (int i = 0; i < kRequests; ++i) {
      ref_outputs[static_cast<size_t>(i)] =
          engine.TakeResponse(ids[static_cast<size_t>(i)]).outputs;
    }
  }

  for (int depth : {1, 2, 4}) {
    for (int workers : {1, 2}) {
      WideLstmFixture fix;
      ServerOptions options;
      options.num_workers = workers;
      options.threads_per_worker = 2;
      options.pipeline_depth = depth;
      Server server(&fix.registry, options);
      server.Start();

      std::vector<std::promise<std::vector<Tensor>>> promises(kRequests);
      std::vector<std::future<std::vector<Tensor>>> futures;
      for (int i = 0; i < kRequests; ++i) {
        futures.push_back(promises[static_cast<size_t>(i)].get_future());
      }
      for (int i = 0; i < kRequests; ++i) {
        const RequestSpec& spec = requests[static_cast<size_t>(i)];
        auto* promise = &promises[static_cast<size_t>(i)];
        server.Submit(fix.model.Unfold(spec.length), ChainExternals(spec, kHidden),
                      {ValueRef::Output(spec.length - 1, 0),
                       ValueRef::Output(spec.length - 1, 1)},
                      [promise](RequestId, RequestStatus, std::vector<Tensor> outputs) {
                        promise->set_value(std::move(outputs));
                      });
      }
      for (int i = 0; i < kRequests; ++i) {
        const std::vector<Tensor> outputs = futures[static_cast<size_t>(i)].get();
        const std::vector<Tensor>& want = ref_outputs[static_cast<size_t>(i)];
        ASSERT_EQ(outputs.size(), want.size())
            << "request " << i << " depth " << depth << " workers " << workers;
        for (size_t j = 0; j < outputs.size(); ++j) {
          EXPECT_TRUE(outputs[j].ElementsEqual(want[j]))
              << "request " << i << " output " << j << " differs at depth " << depth
              << " workers " << workers;
        }
      }
      server.Shutdown();
    }
  }
}

TEST(DeterminismTest, SlackBatchingPreservesBitwiseOutputsAtEveryConfig) {
  // SLA-aware batch formation changes *when* batches launch and *which*
  // requests share a task — never the numbers. With slack_batching on (and
  // the online cost model calibrating live), every shard x depth config
  // must still match the serial SyncEngine bit for bit.
  constexpr int kRequests = 20;
  constexpr int64_t kInputDim = 24;
  constexpr int64_t kHidden = 40;
  const auto requests = MakeRequests(kRequests, kInputDim, /*seed=*/66);

  WideLstmFixture ref_fix;
  std::vector<std::vector<Tensor>> ref_outputs(kRequests);
  {
    SyncEngine engine(&ref_fix.registry);
    std::vector<RequestId> ids;
    for (const RequestSpec& spec : requests) {
      ids.push_back(engine.Submit(ref_fix.model.Unfold(spec.length),
                                  ChainExternals(spec, kHidden),
                                  {ValueRef::Output(spec.length - 1, 0),
                                   ValueRef::Output(spec.length - 1, 1)}));
    }
    engine.RunToCompletion();
    for (int i = 0; i < kRequests; ++i) {
      ref_outputs[static_cast<size_t>(i)] =
          engine.TakeResponse(ids[static_cast<size_t>(i)]).outputs;
    }
  }

  for (int shards : {1, 2}) {
    for (int depth : {1, 2}) {
      WideLstmFixture fix;
      ServerOptions options;
      options.num_workers = 2;
      options.threads_per_worker = 2;
      options.num_shards = shards;
      options.pipeline_depth = depth;
      options.batch_policy.slack_batching = true;
      options.batch_policy.max_delay_micros = 300.0;
      Server server(&fix.registry, options);
      server.Start();

      std::vector<std::promise<std::vector<Tensor>>> promises(kRequests);
      std::vector<std::future<std::vector<Tensor>>> futures;
      for (int i = 0; i < kRequests; ++i) {
        futures.push_back(promises[static_cast<size_t>(i)].get_future());
      }
      for (int i = 0; i < kRequests; ++i) {
        const RequestSpec& spec = requests[static_cast<size_t>(i)];
        auto* promise = &promises[static_cast<size_t>(i)];
        server.Submit(fix.model.Unfold(spec.length), ChainExternals(spec, kHidden),
                      {ValueRef::Output(spec.length - 1, 0),
                       ValueRef::Output(spec.length - 1, 1)},
                      [promise](RequestId, RequestStatus, std::vector<Tensor> outputs) {
                        promise->set_value(std::move(outputs));
                      });
      }
      for (int i = 0; i < kRequests; ++i) {
        const std::vector<Tensor> outputs = futures[static_cast<size_t>(i)].get();
        const std::vector<Tensor>& want = ref_outputs[static_cast<size_t>(i)];
        ASSERT_EQ(outputs.size(), want.size())
            << "request " << i << " shards " << shards << " depth " << depth;
        for (size_t j = 0; j < outputs.size(); ++j) {
          EXPECT_TRUE(outputs[j].ElementsEqual(want[j]))
              << "request " << i << " output " << j << " differs at shards "
              << shards << " depth " << depth << " with slack batching on";
        }
      }
      server.Shutdown();
      EXPECT_EQ(server.metrics().NumCompleted(), static_cast<size_t>(kRequests));
    }
  }
}

TEST(DeterminismTest, ServerOutputIsIndependentOfThreadsPerWorker) {
  constexpr int kRequests = 12;
  constexpr int64_t kInputDim = 24;
  constexpr int64_t kHidden = 40;
  const auto requests = MakeRequests(kRequests, kInputDim, /*seed=*/99);

  std::vector<std::vector<std::vector<Tensor>>> by_config;
  for (int threads : {1, 3, 4}) {
    WideLstmFixture fix;
    ServerOptions options;
    options.threads_per_worker = threads;
    Server server(&fix.registry, options);
    server.Start();
    std::vector<std::vector<Tensor>> outputs(kRequests);
    for (int i = 0; i < kRequests; ++i) {
      const RequestSpec& spec = requests[static_cast<size_t>(i)];
      Response result = server.SubmitAndWait(
          fix.model.Unfold(spec.length), ChainExternals(spec, kHidden),
          {ValueRef::Output(spec.length - 1, 0)});
      ASSERT_TRUE(result.ok());
      outputs[static_cast<size_t>(i)] = std::move(result.outputs);
    }
    server.Shutdown();
    by_config.push_back(std::move(outputs));
  }
  for (size_t cfg = 1; cfg < by_config.size(); ++cfg) {
    for (int i = 0; i < kRequests; ++i) {
      ASSERT_EQ(by_config[cfg][static_cast<size_t>(i)].size(),
                by_config[0][static_cast<size_t>(i)].size());
      EXPECT_TRUE(by_config[cfg][static_cast<size_t>(i)][0].ElementsEqual(
          by_config[0][static_cast<size_t>(i)][0]))
          << "request " << i << " config " << cfg;
    }
  }
}

}  // namespace
}  // namespace batchmaker
