// Pins the DeviceBackend contract (DESIGN.md "Device backend API"):
// registry round-trips, per-backend capability flags, staging-buffer
// lifetime, event/fence semantics (signal exactly once, fixed-latency
// deadlines, FIFO completion per queue), and the null backend's
// compute-free zero outputs. Engine-level conformance (Server x {cpu,
// null}, SimEngine x sim driven by identical submission code) lives in
// api_conformance_test.cc; bitwise identity of the cpu backend lives in
// determinism_test.cc.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "src/device/cpu_backend.h"
#include "src/device/device_backend.h"
#include "src/device/device_registry.h"
#include "src/device/null_backend.h"
#include "src/device/sim_backend.h"
#include "src/runtime/cost_model.h"
#include "tests/test_models.h"

namespace batchmaker {
namespace {

DeviceConfig CpuConfig(const CellRegistry* registry) {
  DeviceConfig config;
  config.registry = registry;
  return config;
}

// ---- Registry --------------------------------------------------------------

TEST(DeviceRegistryTest, BuiltinNamesRoundTrip) {
  DeviceRegistry& reg = DeviceRegistry::Instance();
  EXPECT_TRUE(reg.Has("cpu"));
  EXPECT_TRUE(reg.Has("null"));
  EXPECT_TRUE(reg.Has("sim"));
  const std::vector<std::string> names = reg.Names();
  EXPECT_GE(names.size(), 3u);

  TinyLstmFixture fix;
  for (const char* name : {"cpu", "null"}) {
    auto backend = reg.Create(name, CpuConfig(&fix.registry));
    ASSERT_NE(backend, nullptr) << name;
    EXPECT_STREQ(backend->name(), name);
  }

  CostModel cost;
  DeviceConfig sim_config;
  sim_config.cost_model = &cost;
  auto sim = reg.Create("sim", sim_config);
  ASSERT_NE(sim, nullptr);
  EXPECT_STREQ(sim->name(), "sim");
}

TEST(DeviceRegistryTest, UnknownOrMisconfiguredBackendsCreateNull) {
  DeviceRegistry& reg = DeviceRegistry::Instance();
  EXPECT_FALSE(reg.Has("tpu"));
  EXPECT_EQ(reg.Create("tpu", DeviceConfig{}), nullptr);
  // Builtins refuse configs missing their required inputs.
  EXPECT_EQ(reg.Create("cpu", DeviceConfig{}), nullptr);   // no CellRegistry
  EXPECT_EQ(reg.Create("sim", DeviceConfig{}), nullptr);   // no CostModel
}

// A registered third-party backend is creatable by name, just like the
// builtins the engines resolve through EngineOptions::backend.
class FixedCapsBackend : public DeviceBackend {
 public:
  FixedCapsBackend() { caps_.max_pipeline_depth = 1; }
  const char* name() const override { return "test-fixed"; }
  const DeviceCaps& caps() const override { return caps_; }
  std::unique_ptr<DeviceQueue> CreateQueue(const DeviceQueueOptions&) override {
    return nullptr;  // unavailable; never exercised by this test
  }

 private:
  DeviceCaps caps_;
};

TEST(DeviceRegistryTest, ThirdPartyBackendsRegisterByName) {
  DeviceRegistry& reg = DeviceRegistry::Instance();
  reg.Register("test-fixed", [](const DeviceConfig&) {
    return std::make_unique<FixedCapsBackend>();
  });
  ASSERT_TRUE(reg.Has("test-fixed"));
  auto backend = reg.Create("test-fixed", DeviceConfig{});
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->caps().max_pipeline_depth, 1);
}

TEST(DeviceRegistryTest, OpenClIsBuildGated) {
  DeviceRegistry& reg = DeviceRegistry::Instance();
  if (reg.Has("opencl")) {
    // Built with CB_WITH_OPENCL: the stub reports unavailable (null) until
    // a real implementation lands; creation must not crash either way.
    auto backend = reg.Create("opencl", DeviceConfig{});
    EXPECT_EQ(backend, nullptr);
  }
}

// ---- Capability flags ------------------------------------------------------

TEST(DeviceCapsTest, PerBackendFlagsMatchTheirContracts) {
  TinyLstmFixture fix;
  DeviceRegistry& reg = DeviceRegistry::Instance();

  const auto cpu = reg.Create("cpu", CpuConfig(&fix.registry));
  ASSERT_NE(cpu, nullptr);
  EXPECT_TRUE(cpu->caps().real_compute);
  EXPECT_FALSE(cpu->caps().virtual_time);
  EXPECT_TRUE(cpu->caps().requires_gather);
  EXPECT_EQ(cpu->caps().max_pipeline_depth, 0);  // unbounded
  EXPECT_TRUE(cpu->caps().supports_numa_pinning);
  EXPECT_TRUE(cpu->caps().supports_intra_task_pool);
  EXPECT_TRUE(cpu->caps().supports_watchdog);
  for (int p = 0; p < kNumPrecisions; ++p) {
    EXPECT_TRUE(cpu->caps().supported_precisions[p]) << p;
  }

  const auto null_backend = reg.Create("null", CpuConfig(&fix.registry));
  ASSERT_NE(null_backend, nullptr);
  EXPECT_FALSE(null_backend->caps().real_compute);
  EXPECT_FALSE(null_backend->caps().virtual_time);
  EXPECT_FALSE(null_backend->caps().requires_gather);
  EXPECT_TRUE(null_backend->caps().supports_watchdog);

  CostModel cost;
  DeviceConfig sim_config;
  sim_config.cost_model = &cost;
  const auto sim = reg.Create("sim", sim_config);
  ASSERT_NE(sim, nullptr);
  EXPECT_TRUE(sim->caps().virtual_time);
  EXPECT_FALSE(sim->caps().real_compute);
}

// ---- Events ----------------------------------------------------------------

TEST(DeviceEventTest, CompleteSignalsOnceAndHandsOverOutputs) {
  const DeviceEventPtr event = std::make_shared<DeviceEvent>();
  EXPECT_FALSE(event->Signaled());
  std::vector<Tensor> outputs;
  outputs.push_back(Tensor::Zeros(Shape{2, 4}));
  event->Complete(std::move(outputs));
  EXPECT_TRUE(event->Signaled());
  event->Wait();  // already signalled: returns immediately
  EXPECT_FALSE(event->failed());
  const std::vector<Tensor> taken = event->TakeOutputs();
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].shape(), (Shape{2, 4}));
}

TEST(DeviceEventTest, FailSignalsWithEmptyOutputs) {
  const DeviceEventPtr event = std::make_shared<DeviceEvent>();
  event->Fail();
  event->Wait();
  EXPECT_TRUE(event->failed());
  EXPECT_TRUE(event->TakeOutputs().empty());
}

TEST(DeviceEventTest, FixedLatencyDeadlineGatesSignaledAndWait) {
  const DeviceEventPtr event = std::make_shared<DeviceEvent>();
  const auto start = std::chrono::steady_clock::now();
  event->CompleteAfter(/*latency_micros=*/20000.0, {});
  // Signaled() stays false until the deadline passes, so per-queue
  // completion order tracks submission order even with zero compute.
  EXPECT_FALSE(event->Signaled());
  event->Wait();
  const double waited_micros =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                start)
          .count();
  EXPECT_GE(waited_micros, 20000.0);
  EXPECT_TRUE(event->Signaled());
  EXPECT_FALSE(event->failed());
}

// ---- Staging arenas --------------------------------------------------------

TEST(DeviceArenaTest, CpuArenaExposesHostStorageNullArenaDoesNot) {
  TinyLstmFixture fix;
  CpuBackend cpu(&fix.registry, Precision::kF32);
  const auto arena = cpu.CreateArena();
  ASSERT_NE(arena, nullptr);
  ASSERT_NE(arena->host(), nullptr);
  arena->Prefault(size_t{1} << 16);
  // The arena is reusable across pipeline parities: allocate, reset, and
  // the next gather can allocate again.
  Tensor staged = Tensor::Zeros(Shape{2, 4});
  (void)staged;
  arena->Reset();
  arena->Prefault(size_t{1} << 16);
  arena->Reset();

  NullBackend null_backend(&fix.registry, /*latency_micros=*/0.0);
  const auto null_arena = null_backend.CreateArena();
  ASSERT_NE(null_arena, nullptr);
  EXPECT_EQ(null_arena->host(), nullptr);  // stages nothing
  null_arena->Prefault(size_t{1} << 16);   // no-ops by contract
  null_arena->Reset();
}

// ---- Null backend queue ----------------------------------------------------

BatchedTask MakeTask(uint64_t id, CellTypeId type, int batch) {
  BatchedTask task;
  task.id = id;
  task.type = type;
  for (int i = 0; i < batch; ++i) {
    task.entries.push_back(TaskEntry{static_cast<RequestId>(100 + i), i});
  }
  return task;
}

TEST(NullBackendTest, QueueReturnsZeroOutputsShapedForTheBatch) {
  TinyLstmFixture fix;
  const CellTypeId type = fix.model.cell_type();
  const CellDef& def = fix.registry.def(type);
  NullBackend backend(&fix.registry, /*latency_micros=*/0.0);
  const auto queue = backend.CreateQueue(DeviceQueueOptions{});
  ASSERT_NE(queue, nullptr);

  const GatheredBatch empty_gather;  // !requires_gather: nothing staged
  for (int batch : {1, 3}) {
    const DeviceEventPtr event = queue->Submit(MakeTask(1, type, batch), empty_gather);
    ASSERT_NE(event, nullptr);
    EXPECT_TRUE(event->Signaled());  // zero latency: ready immediately
    event->Wait();
    EXPECT_FALSE(event->failed());
    const std::vector<Tensor> outputs = event->TakeOutputs();
    ASSERT_EQ(outputs.size(), static_cast<size_t>(def.NumOutputs()));
    for (int i = 0; i < def.NumOutputs(); ++i) {
      const ValueType& vt = def.output_type(i);
      const Tensor& out = outputs[static_cast<size_t>(i)];
      ASSERT_EQ(out.shape().dims().size(), vt.shape.dims().size() + 1);
      EXPECT_EQ(out.shape().Dim(0), batch);
      for (size_t d = 0; d < vt.shape.dims().size(); ++d) {
        EXPECT_EQ(out.shape().Dim(static_cast<int>(d) + 1), vt.shape.dims()[d]);
      }
      for (int64_t r = 0; r < out.shape().Dim(0); ++r) {
        for (int64_t c = 0; c < out.shape().Dim(1); ++c) {
          ASSERT_EQ(out.At(r, c), 0.0f);
        }
      }
    }
  }
}

TEST(NullBackendTest, FixedLatencyCompletionsArriveInSubmissionOrder) {
  TinyLstmFixture fix;
  const CellTypeId type = fix.model.cell_type();
  NullBackend backend(&fix.registry, /*latency_micros=*/15000.0);
  const auto queue = backend.CreateQueue(DeviceQueueOptions{});
  ASSERT_NE(queue, nullptr);

  const GatheredBatch empty_gather;
  const DeviceEventPtr first = queue->Submit(MakeTask(1, type, 1), empty_gather);
  const DeviceEventPtr second = queue->Submit(MakeTask(2, type, 1), empty_gather);
  EXPECT_FALSE(first->Signaled());
  EXPECT_FALSE(second->Signaled());
  // FIFO per queue: once the later submission is ready, the earlier one
  // must be too (its deadline is no later).
  second->Wait();
  EXPECT_TRUE(first->Signaled());
  first->Wait();
  EXPECT_FALSE(first->failed());
}

// ---- Sim backend pricing ---------------------------------------------------

TEST(SimBackendTest, PricesTasksThroughTheCostModel) {
  TinyLstmFixture fix;
  CostModel cost;
  for (CellTypeId t = 0; t < fix.registry.NumTypes(); ++t) {
    cost.SetCurve(t, UnitCostCurve());
  }
  cost.SetMigrationPenaltyMicros(7.5);

  SimBackend backend(&cost);
  EXPECT_TRUE(backend.caps().virtual_time);
  const CellTypeId type = fix.model.cell_type();
  for (int batch : {1, 4, 16}) {
    EXPECT_DOUBLE_EQ(backend.EstimateTaskMicros(type, batch),
                     cost.TaskMicros(type, batch));
    EXPECT_GE(backend.EstimateTaskMicros(type, batch), 0.0);
  }
  EXPECT_DOUBLE_EQ(backend.EstimateMigrationPenaltyMicros(), 7.5);
}

TEST(SimBackendTest, RealComputeBackendsDeclineVirtualTimePricing) {
  TinyLstmFixture fix;
  CpuBackend cpu(&fix.registry, Precision::kF32);
  // < 0 = cannot price: SimWorkerPool refuses such backends up front.
  EXPECT_LT(cpu.EstimateTaskMicros(fix.model.cell_type(), 4), 0.0);
}

}  // namespace
}  // namespace batchmaker
