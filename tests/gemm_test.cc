// Property tests for the packed GEMM against a naive triple-loop reference,
// plus bitwise serial-vs-parallel identity and PackedMatrix reuse.

#include "src/tensor/gemm.h"

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/thread_pool.h"

namespace batchmaker {
namespace {

// Deterministic pseudo-random fill with values that exercise rounding
// (non-dyadic fractions) and signs.
std::vector<float> RandomMatrix(int64_t rows, int64_t cols, uint32_t seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  std::vector<float> m(static_cast<size_t>(rows * cols));
  for (float& v : m) {
    v = dist(gen);
  }
  return m;
}

// The reference: textbook i-k-j triple loop, same accumulation order the
// packed kernel promises (k ascending per C element).
std::vector<float> NaiveGemm(const std::vector<float>& a, const std::vector<float>& b,
                             int64_t m, int64_t k, int64_t n, bool accumulate,
                             const std::vector<float>& c_init = {}) {
  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
  if (accumulate) {
    c = c_init;
  }
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = accumulate ? c[static_cast<size_t>(i * n + j)] : 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += a[static_cast<size_t>(i * k + p)] * b[static_cast<size_t>(p * n + j)];
      }
      c[static_cast<size_t>(i * n + j)] = acc;
    }
  }
  return c;
}

// The packed kernel reassociates the j (column) loop into SIMD lanes but
// keeps k sequential, so results match the naive loop to within a small
// relative tolerance (and are exactly equal in the scalar-kernel build).
void ExpectClose(const std::vector<float>& got, const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    const float tol = 1e-4f * (1.0f + std::fabs(want[i]));
    EXPECT_NEAR(got[i], want[i], tol) << "at flat index " << i;
  }
}

TEST(GemmTest, MatchesNaiveAcrossShapeGrid) {
  const int64_t sizes[] = {1, 3, 17, 64, 65, 130};
  uint32_t seed = 1;
  for (int64_t m : sizes) {
    for (int64_t k : sizes) {
      for (int64_t n : sizes) {
        SCOPED_TRACE(testing::Message() << "m=" << m << " k=" << k << " n=" << n);
        const auto a = RandomMatrix(m, k, seed++);
        const auto b = RandomMatrix(k, n, seed++);
        // Poison C: the beta=0 path must overwrite, not accumulate.
        std::vector<float> c(static_cast<size_t>(m * n), 123.0f);
        GemmRaw(a.data(), b.data(), c.data(), m, k, n);
        ExpectClose(c, NaiveGemm(a, b, m, k, n, /*accumulate=*/false));
      }
    }
  }
}

TEST(GemmTest, ZeroInnerDimensionZerosOutput) {
  // k=0: the product is all zeros; the non-accumulating form must still
  // clear whatever was in C.
  const int64_t m = 5, n = 33;
  std::vector<float> a;  // [5, 0]
  std::vector<float> b;  // [0, 33]
  std::vector<float> c(static_cast<size_t>(m * n), 7.0f);
  GemmRaw(a.data(), b.data(), c.data(), m, /*k=*/0, n);
  for (float v : c) {
    EXPECT_EQ(v, 0.0f);
  }

  // The accumulating form with k=0 is a no-op.
  std::vector<float> c2(static_cast<size_t>(m * n), 7.0f);
  GemmAccumulateRaw(a.data(), b.data(), c2.data(), m, /*k=*/0, n);
  for (float v : c2) {
    EXPECT_EQ(v, 7.0f);
  }
}

TEST(GemmTest, AccumulateAddsOntoExistingC) {
  const int64_t sizes[] = {1, 3, 17, 65};
  uint32_t seed = 1000;
  for (int64_t m : sizes) {
    for (int64_t k : sizes) {
      for (int64_t n : sizes) {
        SCOPED_TRACE(testing::Message() << "m=" << m << " k=" << k << " n=" << n);
        const auto a = RandomMatrix(m, k, seed++);
        const auto b = RandomMatrix(k, n, seed++);
        const auto c_init = RandomMatrix(m, n, seed++);
        std::vector<float> c = c_init;
        GemmAccumulateRaw(a.data(), b.data(), c.data(), m, k, n);
        ExpectClose(c, NaiveGemm(a, b, m, k, n, /*accumulate=*/true, c_init));
      }
    }
  }
}

TEST(GemmTest, ParallelIsBitwiseIdenticalToSerial) {
  // The determinism contract: pooled execution must produce byte-identical
  // output for any thread count. Shapes chosen to hit both parallel
  // partitions (multiple M blocks; multiple B panels with a single M block).
  struct ShapeCase {
    int64_t m, k, n;
  };
  const ShapeCase cases[] = {
      {1, 64, 130},    // one M block, many panels -> panel partition
      {130, 17, 64},   // multiple M blocks (kMc=120) -> block partition
      {257, 130, 96},  // both dimensions non-trivial
      {3, 1, 17},      // degenerate small
  };
  ThreadPool pool2(2);
  ThreadPool pool4(4);
  ThreadPool pool7(7);
  uint32_t seed = 42;
  for (const ShapeCase& sc : cases) {
    SCOPED_TRACE(testing::Message() << "m=" << sc.m << " k=" << sc.k << " n=" << sc.n);
    const auto a = RandomMatrix(sc.m, sc.k, seed++);
    const auto b = RandomMatrix(sc.k, sc.n, seed++);
    const PackedMatrix packed = PackedMatrix::Pack(b.data(), sc.k, sc.n);
    const size_t c_size = static_cast<size_t>(sc.m * sc.n);

    std::vector<float> serial(c_size, -1.0f);
    GemmPacked(a.data(), packed, serial.data(), sc.m, /*accumulate=*/false);

    for (ThreadPool* pool : {&pool2, &pool4, &pool7}) {
      std::vector<float> parallel(c_size, -2.0f);
      GemmPacked(a.data(), packed, parallel.data(), sc.m, /*accumulate=*/false, pool);
      EXPECT_EQ(0, std::memcmp(serial.data(), parallel.data(), c_size * sizeof(float)))
          << "pool size " << pool->num_threads();
    }
  }
}

TEST(GemmTest, PackedMatrixIsReusableAcrossCalls) {
  const int64_t m = 33, k = 65, n = 47;
  const auto a1 = RandomMatrix(m, k, 7);
  const auto a2 = RandomMatrix(m, k, 8);
  const auto b = RandomMatrix(k, n, 9);
  const PackedMatrix packed = PackedMatrix::Pack(b.data(), k, n);
  EXPECT_EQ(packed.k(), k);
  EXPECT_EQ(packed.n(), n);

  // Two calls against the same packed B match independent on-the-fly packs.
  std::vector<float> c1(static_cast<size_t>(m * n));
  std::vector<float> c2(static_cast<size_t>(m * n));
  GemmPacked(a1.data(), packed, c1.data(), m, /*accumulate=*/false);
  GemmPacked(a2.data(), packed, c2.data(), m, /*accumulate=*/false);

  std::vector<float> want1(static_cast<size_t>(m * n));
  std::vector<float> want2(static_cast<size_t>(m * n));
  GemmRaw(a1.data(), b.data(), want1.data(), m, k, n);
  GemmRaw(a2.data(), b.data(), want2.data(), m, k, n);
  EXPECT_EQ(0, std::memcmp(c1.data(), want1.data(), c1.size() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(c2.data(), want2.data(), c2.size() * sizeof(float)));
}

TEST(GemmTest, PackTensorMatchesPackPointer) {
  const int64_t k = 17, n = 30;
  const auto b = RandomMatrix(k, n, 11);
  Tensor bt = Tensor::FromVector(Shape{k, n}, b);
  const PackedMatrix from_tensor = PackedMatrix::Pack(bt);
  const PackedMatrix from_ptr = PackedMatrix::Pack(b.data(), k, n);
  ASSERT_EQ(from_tensor.num_panels(), from_ptr.num_panels());
  ASSERT_EQ(from_tensor.k(), from_ptr.k());
  for (int64_t j = 0; j < from_tensor.num_panels(); ++j) {
    EXPECT_EQ(0, std::memcmp(from_tensor.panel(j), from_ptr.panel(j),
                             sizeof(float) * 16 * static_cast<size_t>(k)));
  }
}

TEST(GemmTest, MatMulTensorWrapper) {
  const int64_t m = 4, k = 6, n = 5;
  const auto a = RandomMatrix(m, k, 21);
  const auto b = RandomMatrix(k, n, 22);
  Tensor at = Tensor::FromVector(Shape{m, k}, a);
  Tensor bt = Tensor::FromVector(Shape{k, n}, b);
  const Tensor c = MatMul(at, bt);
  ASSERT_EQ(c.shape().Dim(0), m);
  ASSERT_EQ(c.shape().Dim(1), n);
  const auto want = NaiveGemm(a, b, m, k, n, /*accumulate=*/false);
  std::vector<float> got(c.f32(), c.f32() + m * n);
  ExpectClose(got, want);

  const PackedMatrix packed = PackedMatrix::Pack(bt);
  const Tensor cp = MatMulPacked(at, packed);
  EXPECT_TRUE(c.ElementsEqual(cp));
}

}  // namespace
}  // namespace batchmaker
