// Property tests for the packed GEMM against a naive triple-loop reference,
// plus bitwise serial-vs-parallel identity and PackedMatrix reuse.

#include "src/tensor/gemm.h"

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/thread_pool.h"

namespace batchmaker {
namespace {

// Deterministic pseudo-random fill with values that exercise rounding
// (non-dyadic fractions) and signs.
std::vector<float> RandomMatrix(int64_t rows, int64_t cols, uint32_t seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  std::vector<float> m(static_cast<size_t>(rows * cols));
  for (float& v : m) {
    v = dist(gen);
  }
  return m;
}

// The reference: textbook i-k-j triple loop, same accumulation order the
// packed kernel promises (k ascending per C element).
std::vector<float> NaiveGemm(const std::vector<float>& a, const std::vector<float>& b,
                             int64_t m, int64_t k, int64_t n, bool accumulate,
                             const std::vector<float>& c_init = {}) {
  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
  if (accumulate) {
    c = c_init;
  }
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = accumulate ? c[static_cast<size_t>(i * n + j)] : 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += a[static_cast<size_t>(i * k + p)] * b[static_cast<size_t>(p * n + j)];
      }
      c[static_cast<size_t>(i * n + j)] = acc;
    }
  }
  return c;
}

// The packed kernel reassociates the j (column) loop into SIMD lanes but
// keeps k sequential, so results match the naive loop to within a small
// relative tolerance (and are exactly equal in the scalar-kernel build).
void ExpectClose(const std::vector<float>& got, const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    const float tol = 1e-4f * (1.0f + std::fabs(want[i]));
    EXPECT_NEAR(got[i], want[i], tol) << "at flat index " << i;
  }
}

TEST(GemmTest, MatchesNaiveAcrossShapeGrid) {
  const int64_t sizes[] = {1, 3, 17, 64, 65, 130};
  uint32_t seed = 1;
  for (int64_t m : sizes) {
    for (int64_t k : sizes) {
      for (int64_t n : sizes) {
        SCOPED_TRACE(testing::Message() << "m=" << m << " k=" << k << " n=" << n);
        const auto a = RandomMatrix(m, k, seed++);
        const auto b = RandomMatrix(k, n, seed++);
        // Poison C: the beta=0 path must overwrite, not accumulate.
        std::vector<float> c(static_cast<size_t>(m * n), 123.0f);
        GemmRaw(a.data(), b.data(), c.data(), m, k, n);
        ExpectClose(c, NaiveGemm(a, b, m, k, n, /*accumulate=*/false));
      }
    }
  }
}

TEST(GemmTest, ZeroInnerDimensionZerosOutput) {
  // k=0: the product is all zeros; the non-accumulating form must still
  // clear whatever was in C.
  const int64_t m = 5, n = 33;
  std::vector<float> a;  // [5, 0]
  std::vector<float> b;  // [0, 33]
  std::vector<float> c(static_cast<size_t>(m * n), 7.0f);
  GemmRaw(a.data(), b.data(), c.data(), m, /*k=*/0, n);
  for (float v : c) {
    EXPECT_EQ(v, 0.0f);
  }

  // The accumulating form with k=0 is a no-op.
  std::vector<float> c2(static_cast<size_t>(m * n), 7.0f);
  GemmAccumulateRaw(a.data(), b.data(), c2.data(), m, /*k=*/0, n);
  for (float v : c2) {
    EXPECT_EQ(v, 7.0f);
  }
}

TEST(GemmTest, AccumulateAddsOntoExistingC) {
  const int64_t sizes[] = {1, 3, 17, 65};
  uint32_t seed = 1000;
  for (int64_t m : sizes) {
    for (int64_t k : sizes) {
      for (int64_t n : sizes) {
        SCOPED_TRACE(testing::Message() << "m=" << m << " k=" << k << " n=" << n);
        const auto a = RandomMatrix(m, k, seed++);
        const auto b = RandomMatrix(k, n, seed++);
        const auto c_init = RandomMatrix(m, n, seed++);
        std::vector<float> c = c_init;
        GemmAccumulateRaw(a.data(), b.data(), c.data(), m, k, n);
        ExpectClose(c, NaiveGemm(a, b, m, k, n, /*accumulate=*/true, c_init));
      }
    }
  }
}

TEST(GemmTest, ParallelIsBitwiseIdenticalToSerial) {
  // The determinism contract: pooled execution must produce byte-identical
  // output for any thread count. Shapes chosen to hit both parallel
  // partitions (multiple M blocks; multiple B panels with a single M block).
  struct ShapeCase {
    int64_t m, k, n;
  };
  const ShapeCase cases[] = {
      {1, 64, 130},    // one M block, many panels -> panel partition
      {130, 17, 64},   // multiple M blocks (kMc=120) -> block partition
      {257, 130, 96},  // both dimensions non-trivial
      {3, 1, 17},      // degenerate small
  };
  ThreadPool pool2(2);
  ThreadPool pool4(4);
  ThreadPool pool7(7);
  uint32_t seed = 42;
  for (const ShapeCase& sc : cases) {
    SCOPED_TRACE(testing::Message() << "m=" << sc.m << " k=" << sc.k << " n=" << sc.n);
    const auto a = RandomMatrix(sc.m, sc.k, seed++);
    const auto b = RandomMatrix(sc.k, sc.n, seed++);
    const PackedMatrix packed = PackedMatrix::Pack(b.data(), sc.k, sc.n);
    const size_t c_size = static_cast<size_t>(sc.m * sc.n);

    std::vector<float> serial(c_size, -1.0f);
    GemmPacked(a.data(), packed, serial.data(), sc.m, /*accumulate=*/false);

    for (ThreadPool* pool : {&pool2, &pool4, &pool7}) {
      std::vector<float> parallel(c_size, -2.0f);
      GemmPacked(a.data(), packed, parallel.data(), sc.m, /*accumulate=*/false, pool);
      EXPECT_EQ(0, std::memcmp(serial.data(), parallel.data(), c_size * sizeof(float)))
          << "pool size " << pool->num_threads();
    }
  }
}

TEST(GemmTest, PackedMatrixIsReusableAcrossCalls) {
  const int64_t m = 33, k = 65, n = 47;
  const auto a1 = RandomMatrix(m, k, 7);
  const auto a2 = RandomMatrix(m, k, 8);
  const auto b = RandomMatrix(k, n, 9);
  const PackedMatrix packed = PackedMatrix::Pack(b.data(), k, n);
  EXPECT_EQ(packed.k(), k);
  EXPECT_EQ(packed.n(), n);

  // Two calls against the same packed B match independent on-the-fly packs.
  std::vector<float> c1(static_cast<size_t>(m * n));
  std::vector<float> c2(static_cast<size_t>(m * n));
  GemmPacked(a1.data(), packed, c1.data(), m, /*accumulate=*/false);
  GemmPacked(a2.data(), packed, c2.data(), m, /*accumulate=*/false);

  std::vector<float> want1(static_cast<size_t>(m * n));
  std::vector<float> want2(static_cast<size_t>(m * n));
  GemmRaw(a1.data(), b.data(), want1.data(), m, k, n);
  GemmRaw(a2.data(), b.data(), want2.data(), m, k, n);
  EXPECT_EQ(0, std::memcmp(c1.data(), want1.data(), c1.size() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(c2.data(), want2.data(), c2.size() * sizeof(float)));
}

TEST(GemmTest, PackTensorMatchesPackPointer) {
  const int64_t k = 17, n = 30;
  const auto b = RandomMatrix(k, n, 11);
  Tensor bt = Tensor::FromVector(Shape{k, n}, b);
  const PackedMatrix from_tensor = PackedMatrix::Pack(bt);
  const PackedMatrix from_ptr = PackedMatrix::Pack(b.data(), k, n);
  ASSERT_EQ(from_tensor.num_panels(), from_ptr.num_panels());
  ASSERT_EQ(from_tensor.k(), from_ptr.k());
  for (int64_t j = 0; j < from_tensor.num_panels(); ++j) {
    EXPECT_EQ(0, std::memcmp(from_tensor.panel(j), from_ptr.panel(j),
                             sizeof(float) * 16 * static_cast<size_t>(k)));
  }
}

TEST(GemmTest, MatMulTensorWrapper) {
  const int64_t m = 4, k = 6, n = 5;
  const auto a = RandomMatrix(m, k, 21);
  const auto b = RandomMatrix(k, n, 22);
  Tensor at = Tensor::FromVector(Shape{m, k}, a);
  Tensor bt = Tensor::FromVector(Shape{k, n}, b);
  const Tensor c = MatMul(at, bt);
  ASSERT_EQ(c.shape().Dim(0), m);
  ASSERT_EQ(c.shape().Dim(1), n);
  const auto want = NaiveGemm(a, b, m, k, n, /*accumulate=*/false);
  std::vector<float> got(c.f32(), c.f32() + m * n);
  ExpectClose(got, want);

  const PackedMatrix packed = PackedMatrix::Pack(bt);
  const Tensor cp = MatMulPacked(at, packed);
  EXPECT_TRUE(c.ElementsEqual(cp));
}

// ---------------------------------------------------------------------------
// Low-precision paths (bf16 / int8). The accuracy contract pinned here is
// documented in DESIGN.md "Low-precision execution": relative Frobenius
// error vs the fp32 naive reference, plus bitwise repeatability and
// serial-vs-pool identity *within* each precision.

// Restores full auto-detected dispatch when a tier-forcing test exits (on
// success or failure).
struct TierGuard {
  ~TierGuard() { GemmForceTierForTest("native"); }
};

double RelFrobenius(const std::vector<float>& got, const std::vector<float>& want) {
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < got.size(); ++i) {
    const double d = static_cast<double>(got[i]) - static_cast<double>(want[i]);
    num += d * d;
    den += static_cast<double>(want[i]) * static_cast<double>(want[i]);
  }
  return den == 0.0 ? std::sqrt(num) : std::sqrt(num / den);
}

std::vector<float> RunPacked(const std::vector<float>& a, const PackedMatrix& packed,
                             int64_t m, ThreadPool* pool = nullptr) {
  std::vector<float> c(static_cast<size_t>(m * packed.n()), -3.0f);
  GemmPacked(a.data(), packed, c.data(), m, /*accumulate=*/false, pool);
  return c;
}

// Documented accuracy bounds (DESIGN.md table). bf16 keeps 8 significand
// bits; int8 additionally quantizes activations per row. Both bounds carry
// ~2x headroom over values measured across the shape grid on the avx512
// and scalar tiers.
constexpr double kBf16FrobeniusBound = 0.02;
constexpr double kInt8FrobeniusBound = 0.05;

TEST(GemmLowPrecisionTest, Bf16MatchesFp32WithinBound) {
  const int64_t sizes[] = {1, 3, 17, 64, 130};
  uint32_t seed = 301;
  for (int64_t m : sizes) {
    for (int64_t k : sizes) {
      for (int64_t n : sizes) {
        SCOPED_TRACE(testing::Message() << "m=" << m << " k=" << k << " n=" << n);
        const auto a = RandomMatrix(m, k, seed++);
        const auto b = RandomMatrix(k, n, seed++);
        const PackedMatrix packed = PackedMatrix::PackBf16(b.data(), k, n);
        EXPECT_EQ(packed.precision(), Precision::kBf16);
        const auto got = RunPacked(a, packed, m);
        const auto want = NaiveGemm(a, b, m, k, n, /*accumulate=*/false);
        EXPECT_LE(RelFrobenius(got, want), kBf16FrobeniusBound);
      }
    }
  }
}

TEST(GemmLowPrecisionTest, Int8MatchesFp32WithinBound) {
  const int64_t sizes[] = {1, 3, 17, 64, 130};
  uint32_t seed = 601;
  for (int64_t m : sizes) {
    for (int64_t k : sizes) {
      for (int64_t n : sizes) {
        SCOPED_TRACE(testing::Message() << "m=" << m << " k=" << k << " n=" << n);
        const auto a = RandomMatrix(m, k, seed++);
        const auto b = RandomMatrix(k, n, seed++);
        const PackedMatrix packed = PackedMatrix::PackInt8(b.data(), k, n);
        EXPECT_EQ(packed.precision(), Precision::kInt8);
        const auto got = RunPacked(a, packed, m);
        const auto want = NaiveGemm(a, b, m, k, n, /*accumulate=*/false);
        EXPECT_LE(RelFrobenius(got, want), kInt8FrobeniusBound);
      }
    }
  }
}

// K not a multiple of the k-group width (2 for bf16 pairs, 4 for VNNI
// quads) exercises the padded tail slots; M=1 is the decode-shaped case.
TEST(GemmLowPrecisionTest, DecodeShapedAndOddKTails) {
  const int64_t ks[] = {1, 2, 3, 5, 7, 17, 63};
  uint32_t seed = 901;
  for (int64_t k : ks) {
    SCOPED_TRACE(testing::Message() << "k=" << k);
    const int64_t m = 1, n = 33;
    const auto a = RandomMatrix(m, k, seed++);
    const auto b = RandomMatrix(k, n, seed++);
    const auto want = NaiveGemm(a, b, m, k, n, /*accumulate=*/false);
    const auto got_bf16 = RunPacked(a, PackedMatrix::PackBf16(b.data(), k, n), m);
    const auto got_int8 = RunPacked(a, PackedMatrix::PackInt8(b.data(), k, n), m);
    EXPECT_LE(RelFrobenius(got_bf16, want), kBf16FrobeniusBound);
    EXPECT_LE(RelFrobenius(got_int8, want), kInt8FrobeniusBound);
  }
}

TEST(GemmLowPrecisionTest, RepeatedCallsAreBitwiseIdentical) {
  const int64_t m = 37, k = 65, n = 49;
  const auto a = RandomMatrix(m, k, 1201);
  const auto b = RandomMatrix(k, n, 1202);
  for (Precision p : {Precision::kBf16, Precision::kInt8}) {
    SCOPED_TRACE(PrecisionName(p));
    const PackedMatrix packed = p == Precision::kBf16
                                    ? PackedMatrix::PackBf16(b.data(), k, n)
                                    : PackedMatrix::PackInt8(b.data(), k, n);
    const auto first = RunPacked(a, packed, m);
    const auto second = RunPacked(a, packed, m);
    EXPECT_EQ(0, std::memcmp(first.data(), second.data(), first.size() * sizeof(float)));
  }
}

// The serial-vs-pool determinism memcmp from the fp32 contract, extended to
// both new precisions and both parallel partitions (tall A -> block
// partition; short A -> panel partition).
TEST(GemmLowPrecisionTest, ParallelIsBitwiseIdenticalToSerial) {
  struct ShapeCase {
    int64_t m, k, n;
  };
  const ShapeCase cases[] = {
      {1, 64, 130},    // one M block, many panels -> panel partition
      {130, 17, 64},   // multiple M blocks (kMc=120) -> block partition
      {257, 130, 96},  // both dimensions non-trivial
      {3, 1, 17},      // degenerate small
  };
  ThreadPool pool2(2);
  ThreadPool pool4(4);
  ThreadPool pool7(7);
  uint32_t seed = 1500;
  for (Precision p : {Precision::kBf16, Precision::kInt8}) {
    for (const ShapeCase& sc : cases) {
      SCOPED_TRACE(testing::Message() << PrecisionName(p) << " m=" << sc.m
                                      << " k=" << sc.k << " n=" << sc.n);
      const auto a = RandomMatrix(sc.m, sc.k, seed++);
      const auto b = RandomMatrix(sc.k, sc.n, seed++);
      const PackedMatrix packed = p == Precision::kBf16
                                      ? PackedMatrix::PackBf16(b.data(), sc.k, sc.n)
                                      : PackedMatrix::PackInt8(b.data(), sc.k, sc.n);
      const auto serial = RunPacked(a, packed, sc.m);
      for (ThreadPool* pool : {&pool2, &pool4, &pool7}) {
        const auto parallel = RunPacked(a, packed, sc.m, pool);
        EXPECT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                                 serial.size() * sizeof(float)))
            << "pool size " << pool->num_threads();
      }
    }
  }
}

// An all-zero weight column has scale 0 and must dequantize to exactly 0
// (no 0/0 NaN), regardless of the activations.
TEST(GemmLowPrecisionTest, Int8ZeroWeightColumnStaysExactlyZero) {
  const int64_t m = 9, k = 31, n = 20;
  const auto a = RandomMatrix(m, k, 1700);
  auto b = RandomMatrix(k, n, 1701);
  const int64_t dead_col = 7;
  for (int64_t p = 0; p < k; ++p) {
    b[static_cast<size_t>(p * n + dead_col)] = 0.0f;
  }
  const PackedMatrix packed = PackedMatrix::PackInt8(b.data(), k, n);
  const auto c = RunPacked(a, packed, m);
  for (int64_t i = 0; i < m; ++i) {
    EXPECT_EQ(c[static_cast<size_t>(i * n + dead_col)], 0.0f) << "row " << i;
  }
}

// A zero activation row similarly has scale 0 and must produce an exactly
// zero output row.
TEST(GemmLowPrecisionTest, Int8ZeroActivationRowStaysExactlyZero) {
  const int64_t m = 5, k = 24, n = 18;
  auto a = RandomMatrix(m, k, 1800);
  const auto b = RandomMatrix(k, n, 1801);
  for (int64_t p = 0; p < k; ++p) {
    a[static_cast<size_t>(2 * k + p)] = 0.0f;
  }
  const auto c = RunPacked(a, PackedMatrix::PackInt8(b.data(), k, n), m);
  for (int64_t j = 0; j < n; ++j) {
    EXPECT_EQ(c[static_cast<size_t>(2 * n + j)], 0.0f) << "col " << j;
  }
}

// Non-finite values must die loudly at the quantization boundary, not
// silently poison the s32 accumulators (UB via lrintf on inf/NaN).
TEST(GemmLowPrecisionDeathTest, Int8NonFiniteActivationDies) {
  const int64_t m = 3, k = 10, n = 17;
  const auto b = RandomMatrix(k, n, 1900);
  const PackedMatrix packed = PackedMatrix::PackInt8(b.data(), k, n);
  for (float poison : {std::numeric_limits<float>::quiet_NaN(),
                       std::numeric_limits<float>::infinity(),
                       -std::numeric_limits<float>::infinity()}) {
    auto a = RandomMatrix(m, k, 1901);
    a[static_cast<size_t>(1 * k + 4)] = poison;
    std::vector<float> c(static_cast<size_t>(m * n));
    EXPECT_DEATH(GemmPacked(a.data(), packed, c.data(), m, /*accumulate=*/false),
                 "non-finite activation");
  }
}

TEST(GemmLowPrecisionDeathTest, Int8NonFiniteWeightDies) {
  const int64_t k = 8, n = 5;
  auto b = RandomMatrix(k, n, 2000);
  b[11] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_DEATH(PackedMatrix::PackInt8(b.data(), k, n), "non-finite weight");
}

// ---------------------------------------------------------------------------
// Dispatch-tier forcing. GemmForceTierForTest runs the same ParseTierMask /
// MakeDispatch path as the BM_GEMM_KERNEL env override (which CI exercises
// as an actual env var); the forced cap is intersected with cpuid, so every
// tier below runs safely on any host (it clamps to the best supported
// subset instead of crashing).

// Integer-valued matrices make every fp32 kernel exact (all products and
// partial sums are integers well inside 2^24), so results must be bitwise
// identical across tiers even though the kernels associate differently.
std::vector<float> IntegerMatrix(int64_t rows, int64_t cols, uint32_t seed) {
  std::mt19937 gen(seed);
  std::uniform_int_distribution<int> dist(-8, 8);
  std::vector<float> m(static_cast<size_t>(rows * cols));
  for (float& v : m) {
    v = static_cast<float>(dist(gen));
  }
  return m;
}

TEST(GemmDispatchTest, ForcedTiersProduceIdenticalFp32ResultsOnExactInputs) {
  TierGuard guard;
  const int64_t m = 67, k = 96, n = 130;
  const auto a = IntegerMatrix(m, k, 2100);
  const auto b = IntegerMatrix(k, n, 2101);
  const char* tiers[] = {"scalar", "avx2", "avx512", "avx512_bf16", "avx512_vnni",
                         "native"};
  std::vector<float> reference;
  for (const char* tier : tiers) {
    SCOPED_TRACE(tier);
    GemmForceTierForTest(tier);
    const PackedMatrix packed = PackedMatrix::Pack(b.data(), k, n);
    const auto got = RunPacked(a, packed, m);
    if (reference.empty()) {
      reference = got;
    } else {
      EXPECT_EQ(0,
                std::memcmp(reference.data(), got.data(), got.size() * sizeof(float)));
    }
  }
}

// int8 goes further than the fp32 contract: s32 accumulation is exact and
// the dequant epilogue is shared scalar code, so *arbitrary* inputs give
// bitwise-identical results across every tier — including repacking B at
// each tier's own k-group layout.
TEST(GemmDispatchTest, Int8BitwiseIdenticalAcrossAllTiers) {
  TierGuard guard;
  const int64_t m = 29, k = 77, n = 65;
  const auto a = RandomMatrix(m, k, 2200);
  const auto b = RandomMatrix(k, n, 2201);
  const char* tiers[] = {"scalar", "avx2", "avx512", "avx512_vnni", "native"};
  std::vector<float> reference;
  for (const char* tier : tiers) {
    SCOPED_TRACE(tier);
    GemmForceTierForTest(tier);
    const PackedMatrix packed = PackedMatrix::PackInt8(b.data(), k, n);
    const auto got = RunPacked(a, packed, m);
    if (reference.empty()) {
      reference = got;
    } else {
      EXPECT_EQ(0,
                std::memcmp(reference.data(), got.data(), got.size() * sizeof(float)));
    }
  }
}

// A pack made under one tier stays correct when dispatch later resolves to
// a kernel expecting a different k-group layout (generic fallback).
TEST(GemmDispatchTest, Int8PackSurvivesDispatchChange) {
  TierGuard guard;
  const int64_t m = 11, k = 39, n = 33;
  const auto a = RandomMatrix(m, k, 2300);
  const auto b = RandomMatrix(k, n, 2301);
  GemmForceTierForTest("native");
  const PackedMatrix packed_native = PackedMatrix::PackInt8(b.data(), k, n);
  const auto want = RunPacked(a, packed_native, m);
  GemmForceTierForTest("avx2");
  const auto got = RunPacked(a, packed_native, m);  // layout may mismatch avx2
  EXPECT_EQ(0, std::memcmp(want.data(), got.data(), got.size() * sizeof(float)));
}

TEST(GemmDispatchTest, KernelNamesReflectForcedTier) {
  TierGuard guard;
  GemmForceTierForTest("scalar");
  EXPECT_STREQ(GemmKernelName(Precision::kF32), "scalar_fp32");
  EXPECT_STREQ(GemmKernelName(Precision::kBf16), "emulated_bf16");
  EXPECT_STREQ(GemmKernelName(Precision::kInt8), "scalar_int8");
  EXPECT_FALSE(GemmUsesSimd());
  GemmForceTierForTest("native");
  // Whatever the host supports, the names must be non-empty and stable.
  EXPECT_NE(GemmKernelName(Precision::kF32), nullptr);
  EXPECT_NE(GemmKernelName(Precision::kBf16), nullptr);
  EXPECT_NE(GemmKernelName(Precision::kInt8), nullptr);
}

TEST(GemmLowPrecisionTest, PrecisionNamesRoundTrip) {
  for (Precision p : {Precision::kF32, Precision::kBf16, Precision::kInt8}) {
    Precision parsed = Precision::kF32;
    EXPECT_TRUE(ParsePrecision(PrecisionName(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  Precision unused = Precision::kF32;
  EXPECT_FALSE(ParsePrecision("fp16", &unused));
}

// Fused-bias epilogue: same math as MatMulPacked followed by a row
// broadcast add, to within one rounding of the final add.
TEST(GemmLowPrecisionTest, Int8FusedBiasMatchesSeparateAdd) {
  const int64_t m = 13, k = 40, n = 37;
  const auto a = RandomMatrix(m, k, 2400);
  const auto b = RandomMatrix(k, n, 2401);
  const auto bias = RandomMatrix(1, n, 2402);
  const PackedMatrix packed = PackedMatrix::PackInt8(b.data(), k, n);
  Tensor at = Tensor::FromVector(Shape{m, k}, a);
  Tensor bias_t = Tensor::FromVector(Shape{n}, bias);

  const Tensor fused = MatMulPackedBias(at, packed, bias_t);
  const Tensor unfused = MatMulPacked(at, packed);
  std::vector<float> want(static_cast<size_t>(m * n));
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      want[static_cast<size_t>(i * n + j)] =
          unfused.f32()[i * n + j] + bias[static_cast<size_t>(j)];
    }
  }
  std::vector<float> got(fused.f32(), fused.f32() + m * n);
  ExpectClose(got, want);

  // And the fused path itself is bitwise repeatable, serial vs pool.
  ThreadPool pool4(4);
  const Tensor fused_pool = MatMulPackedBias(at, packed, bias_t, &pool4);
  EXPECT_EQ(0, std::memcmp(fused.f32(), fused_pool.f32(),
                           static_cast<size_t>(m * n) * sizeof(float)));
}

}  // namespace
}  // namespace batchmaker
