// Tests for src/graph: cell definitions, shape inference, the interpreter,
// the type registry, per-request cell graphs, and JSON serialization.

#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/cell_def.h"
#include "src/graph/cell_graph.h"
#include "src/graph/cell_registry.h"
#include "src/graph/executor.h"
#include "src/graph/serialize.h"
#include "src/util/rng.h"

namespace batchmaker {
namespace {

// A tiny affine+tanh cell: y = tanh(x @ W + b), x in R^2, y in R^3.
std::unique_ptr<CellDef> MakeAffineCell(float w_fill, const std::string& name = "affine") {
  auto def = std::make_unique<CellDef>(name);
  const int x = def->AddInput("x", Shape{2});
  const int w = def->AddParam("W", Tensor::Full(Shape{2, 3}, w_fill));
  const int b = def->AddParam("b", Tensor::Full(Shape{3}, 0.5f));
  const int mm = def->AddOp(OpKind::kMatMul, "mm", {x, w});
  const int lin = def->AddOp(OpKind::kAddBias, "lin", {mm, b});
  const int y = def->AddOp(OpKind::kTanh, "y", {lin});
  def->MarkOutput(y);
  def->Finalize();
  return def;
}

// ---------- CellDef / shape inference ----------

TEST(CellDefTest, FinalizeInfersTypes) {
  auto def = MakeAffineCell(1.0f);
  EXPECT_TRUE(def->finalized());
  EXPECT_EQ(def->NumInputs(), 1);
  EXPECT_EQ(def->NumOutputs(), 1);
  const ValueType& out = def->output_type(0);
  EXPECT_TRUE(out.batched);
  EXPECT_EQ(out.shape, Shape{3});
  EXPECT_EQ(out.dtype, DType::kF32);
}

TEST(CellDefTest, ParamTypeIsUnbatched) {
  auto def = MakeAffineCell(1.0f);
  // Op 1 is the weight param.
  const ValueType& w = def->value_type(1);
  EXPECT_FALSE(w.batched);
  EXPECT_EQ(w.shape, (Shape{2, 3}));
}

TEST(CellDefTest, ConcatAndSliceShapes) {
  auto def = std::make_unique<CellDef>("cs");
  const int a = def->AddInput("a", Shape{2});
  const int b = def->AddInput("b", Shape{3});
  const int cat = def->AddOp(OpKind::kConcat, "cat", {a, b});
  const int slc = def->AddOp(OpKind::kSlice, "slc", {cat}, 1, 4);
  def->MarkOutput(slc);
  def->Finalize();
  EXPECT_EQ(def->value_type(cat).shape, Shape{5});
  EXPECT_EQ(def->value_type(slc).shape, Shape{3});
}

TEST(CellDefTest, EmbedAndArgmaxTypes) {
  Rng rng(1);
  auto def = std::make_unique<CellDef>("ea");
  const int ids = def->AddInput("ids", Shape{1}, DType::kI32);
  const int table = def->AddParam("t", Tensor::RandomUniform(Shape{10, 4}, 1.0f, &rng));
  const int emb = def->AddOp(OpKind::kEmbedLookup, "emb", {table, ids});
  const int am = def->AddOp(OpKind::kArgmax, "am", {emb});
  def->MarkOutput(am);
  def->Finalize();
  EXPECT_EQ(def->value_type(emb).shape, Shape{4});
  EXPECT_EQ(def->value_type(am).dtype, DType::kI32);
  EXPECT_EQ(def->value_type(am).shape, Shape{1});
}

TEST(CellDefDeathTest, MatMulShapeMismatchAborts) {
  auto def = std::make_unique<CellDef>("bad");
  const int x = def->AddInput("x", Shape{2});
  const int w = def->AddParam("W", Tensor::Zeros(Shape{3, 3}));  // wants 2 rows
  def->AddOp(OpKind::kMatMul, "mm", {x, w});
  def->MarkOutput(0);
  EXPECT_DEATH(def->Finalize(), "matmul");
}

TEST(CellDefDeathTest, OutputsRequired) {
  auto def = std::make_unique<CellDef>("noout");
  def->AddInput("x", Shape{2});
  EXPECT_DEATH(def->Finalize(), "no outputs");
}

TEST(CellDefDeathTest, ForwardReferenceRejected) {
  auto def = std::make_unique<CellDef>("fwd");
  def->AddInput("x", Shape{2});
  EXPECT_DEATH(def->AddOp(OpKind::kTanh, "t", {5}), "earlier");
}

TEST(CellDefTest, ContentHashEqualityForIdenticalCells) {
  auto a = MakeAffineCell(1.0f);
  auto b = MakeAffineCell(1.0f);
  EXPECT_EQ(a->ContentHash(), b->ContentHash());
  EXPECT_TRUE(a->ContentEquals(*b));
}

TEST(CellDefTest, DifferentWeightsDifferentContent) {
  auto a = MakeAffineCell(1.0f);
  auto b = MakeAffineCell(2.0f);
  EXPECT_FALSE(a->ContentEquals(*b));
  EXPECT_NE(a->ContentHash(), b->ContentHash());
}

TEST(CellDefTest, FlopsPerRowCountsMatMul) {
  auto def = MakeAffineCell(1.0f);
  // matmul 2*2*3 = 12, bias 3, tanh 4*3 = 12.
  EXPECT_EQ(def->FlopsPerRow(), 12 + 3 + 12);
}

// ---------- Executor ----------

TEST(ExecutorTest, AffineCellComputesCorrectly) {
  auto def = MakeAffineCell(1.0f);
  const CellExecutor exec(def.get());
  const Tensor x = Tensor::FromVector(Shape{2, 2}, {1, 2, 0, 0});
  const auto outputs = exec.Execute({&x});
  ASSERT_EQ(outputs.size(), 1u);
  // Row 0: tanh(1+2+0.5) = tanh(3.5); row 1: tanh(0.5).
  EXPECT_NEAR(outputs[0].At(0, 0), std::tanh(3.5f), 1e-6f);
  EXPECT_NEAR(outputs[0].At(1, 0), std::tanh(0.5f), 1e-6f);
}

TEST(ExecutorTest, BatchRowsIndependent) {
  auto def = MakeAffineCell(0.25f);
  const CellExecutor exec(def.get());
  const Tensor one = Tensor::FromVector(Shape{1, 2}, {3, -1});
  const Tensor two = Tensor::FromVector(Shape{2, 2}, {9, 9, 3, -1});
  const auto single = exec.Execute({&one});
  const auto batched = exec.Execute({&two});
  // Row 1 of the batch matches the single-row run: batching is semantically
  // transparent (the core premise of batching cells across requests).
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(batched[0].At(1, c), single[0].At(0, c), 1e-6f);
  }
}

TEST(ExecutorDeathTest, WrongBatchSizesAbort) {
  Rng rng(2);
  auto def = std::make_unique<CellDef>("two_in");
  const int a = def->AddInput("a", Shape{2});
  const int b = def->AddInput("b", Shape{2});
  def->MarkOutput(def->AddOp(OpKind::kAdd, "s", {a, b}));
  def->Finalize();
  const CellExecutor exec(def.get());
  const Tensor x = Tensor::Zeros(Shape{2, 2});
  const Tensor y = Tensor::Zeros(Shape{3, 2});
  const std::vector<const Tensor*> inputs = {&x, &y};
  EXPECT_DEATH(exec.Execute(inputs), "batch");
}

// ---------- Registry ----------

TEST(RegistryTest, DeduplicatesIdenticalCells) {
  CellRegistry registry;
  const CellTypeId a = registry.Register(MakeAffineCell(1.0f));
  const CellTypeId b = registry.Register(MakeAffineCell(1.0f));
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.NumTypes(), 1);
}

TEST(RegistryTest, DistinguishesByWeights) {
  CellRegistry registry;
  const CellTypeId a = registry.Register(MakeAffineCell(1.0f));
  const CellTypeId b = registry.Register(MakeAffineCell(2.0f));
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.NumTypes(), 2);
}

TEST(RegistryTest, InfoAndSetters) {
  CellRegistry registry;
  const CellTypeId id = registry.Register(MakeAffineCell(1.0f), /*priority=*/3,
                                          /*max_batch=*/64);
  EXPECT_EQ(registry.info(id).priority, 3);
  EXPECT_EQ(registry.info(id).max_batch, 64);
  registry.SetPriority(id, 9);
  registry.SetMaxBatch(id, 128);
  registry.SetMinBatch(id, 4);
  EXPECT_EQ(registry.info(id).priority, 9);
  EXPECT_EQ(registry.info(id).max_batch, 128);
  EXPECT_EQ(registry.info(id).min_batch, 4);
}

TEST(RegistryTest, FindByName) {
  CellRegistry registry;
  const CellTypeId id = registry.Register(MakeAffineCell(1.0f, "special"));
  EXPECT_EQ(registry.FindByName("special"), id);
  EXPECT_EQ(registry.FindByName("missing"), kInvalidCellType);
}

// ---------- CellGraph ----------

TEST(CellGraphTest, SuccessorsAndPredecessors) {
  CellRegistry registry;
  const CellTypeId t = registry.Register(MakeAffineCell(1.0f));
  CellGraph g;
  const int n0 = g.AddNode(t, {ValueRef::External(0)});
  const int n1 = g.AddNode(t, {ValueRef::Output(n0, 0)});
  const int n2 = g.AddNode(t, {ValueRef::Output(n0, 0)});
  EXPECT_EQ(g.NumNodes(), 3);
  EXPECT_EQ(g.Successors(n0).size(), 2u);
  EXPECT_EQ(g.NumNodePredecessors(n0), 0);
  EXPECT_EQ(g.NumNodePredecessors(n1), 1);
  EXPECT_EQ(g.NumNodePredecessors(n2), 1);
}

TEST(CellGraphTest, DuplicateEdgeCountsOnce) {
  CellRegistry registry;
  // Cell with two inputs of the same shape.
  auto def = std::make_unique<CellDef>("pair");
  const int a = def->AddInput("a", Shape{3});
  const int b = def->AddInput("b", Shape{3});
  def->MarkOutput(def->AddOp(OpKind::kAdd, "s", {a, b}));
  def->Finalize();
  const CellTypeId t = registry.Register(std::move(def));

  CellGraph g;
  const int n0 = g.AddNode(t, {ValueRef::External(0), ValueRef::External(1)});
  const int n1 = g.AddNode(t, {ValueRef::Output(n0, 0), ValueRef::Output(n0, 0)});
  EXPECT_EQ(g.NumNodePredecessors(n1), 1);
  EXPECT_EQ(g.Successors(n0).size(), 1u);
}

TEST(CellGraphDeathTest, ValidateCatchesBadExternal) {
  CellRegistry registry;
  const CellTypeId t = registry.Register(MakeAffineCell(1.0f));
  CellGraph g;
  g.AddNode(t, {ValueRef::External(5)});
  EXPECT_DEATH(g.Validate(registry, /*num_externals=*/1), "external");
}

TEST(CellGraphDeathTest, ValidateCatchesArityMismatch) {
  CellRegistry registry;
  const CellTypeId t = registry.Register(MakeAffineCell(1.0f));
  CellGraph g;
  g.AddNode(t, {ValueRef::External(0), ValueRef::External(1)});
  EXPECT_DEATH(g.Validate(registry, 2), "arity");
}

TEST(CellGraphTest, NumExternalsReferenced) {
  CellRegistry registry;
  const CellTypeId t = registry.Register(MakeAffineCell(1.0f));
  CellGraph g;
  g.AddNode(t, {ValueRef::External(4)});
  EXPECT_EQ(g.NumExternalsReferenced(), 5);
}

// ---------- Serialization ----------

TEST(SerializeTest, RoundTripPreservesContent) {
  auto def = MakeAffineCell(1.25f);
  const std::string text = CellDefToJsonText(*def);
  auto parsed = CellDefFromJsonText(text);
  EXPECT_TRUE(parsed->finalized());
  EXPECT_TRUE(def->ContentEquals(*parsed));
  EXPECT_EQ(def->ContentHash(), parsed->ContentHash());
}

TEST(SerializeTest, RoundTripExecutesIdentically) {
  Rng rng(7);
  auto def = std::make_unique<CellDef>("rt");
  const int ids = def->AddInput("ids", Shape{1}, DType::kI32);
  const int table = def->AddParam("t", Tensor::RandomUniform(Shape{6, 3}, 1.0f, &rng));
  const int emb = def->AddOp(OpKind::kEmbedLookup, "emb", {table, ids});
  def->MarkOutput(def->AddOp(OpKind::kTanh, "y", {emb}));
  def->Finalize();

  auto parsed = CellDefFromJsonText(CellDefToJsonText(*def));
  const CellExecutor exec_a(def.get());
  const CellExecutor exec_b(parsed.get());
  const Tensor in = Tensor::FromIntVector(Shape{2, 1}, {3, 5});
  const auto out_a = exec_a.Execute({&in});
  const auto out_b = exec_b.Execute({&in});
  EXPECT_TRUE(out_a[0].AllClose(out_b[0], 1e-6f));
}

TEST(SerializeTest, RegistryDeduplicatesAcrossSerializationBoundary) {
  CellRegistry registry;
  auto def = MakeAffineCell(0.75f);
  auto parsed = CellDefFromJsonText(CellDefToJsonText(*def));
  const CellTypeId a = registry.Register(std::move(def));
  const CellTypeId b = registry.Register(std::move(parsed));
  EXPECT_EQ(a, b);
}

TEST(SerializeDeathTest, RejectsWrongFormatTag) {
  EXPECT_DEATH(CellDefFromJsonText(R"({"name":"x","format":"other"})"), "batchmaker cell");
}

}  // namespace
}  // namespace batchmaker
