// Tests for the load-generation harness and the BatchMakerSystem adapter,
// including directional comparisons between cellular batching and the
// padding baseline (the paper's headline claims in miniature).

#include <gtest/gtest.h>

#include <memory>

#include "src/baselines/padding_system.h"
#include "src/sim/batchmaker_system.h"
#include "src/sim/loadgen.h"
#include "tests/test_models.h"

namespace batchmaker {
namespace {

// Shared tiny-LSTM scenario: unit hidden sizes, the paper's GPU cost curve.
struct LstmScenario {
  LstmScenario() {
    cost.SetCurve(fixture.model.cell_type(), GpuLstmCurve());
    cost.SetPerTaskOverheadMicros(kBatchMakerTaskOverheadMicros);
    cost.SetPerItemOverheadMicros(kBatchMakerPerItemOverheadMicros);
    fixture.registry.SetMaxBatch(fixture.model.cell_type(), 512);
  }

  std::unique_ptr<ServingSystem> MakeBatchMaker() {
    return std::make_unique<BatchMakerSystem>(
        &fixture.registry, &cost,
        [this](const WorkItem& item) { return fixture.model.Unfold(item.length); });
  }

  static std::unique_ptr<ServingSystem> MakePadding() {
    PaddingSystemOptions options;  // defaults: width 10, bmax 512, LSTM curve
    return std::make_unique<PaddingSystem>(options);
  }

  TinyLstmFixture fixture;
  CostModel cost;
};

LoadGenOptions FastOptions() {
  LoadGenOptions options;
  options.horizon_seconds = 1.0;
  options.seed = 7;
  return options;
}

TEST(LoadGenTest, UnsaturatedPointAchievesOfferedRate) {
  LstmScenario scenario;
  WmtLengthSampler sampler;
  Rng rng(1);
  const auto dataset = SampleChainDataset(2000, sampler, &rng);
  auto system = scenario.MakeBatchMaker();
  const LoadPoint point = RunOpenLoop(system.get(), dataset, 1000.0, FastOptions());
  EXPECT_FALSE(point.saturated);
  EXPECT_NEAR(point.achieved_rps, 1000.0, 100.0);
  EXPECT_GT(point.measured_requests, 500u);
  EXPECT_GT(point.p50_ms, 0.0);
  EXPECT_LE(point.p50_ms, point.p90_ms);
  EXPECT_LE(point.p90_ms, point.p99_ms);
}

TEST(LoadGenTest, OverloadIsDetectedAsSaturation) {
  LstmScenario scenario;
  WmtLengthSampler sampler;
  Rng rng(2);
  const auto dataset = SampleChainDataset(2000, sampler, &rng);
  auto system = scenario.MakeBatchMaker();
  // 60k req/s is far beyond one simulated V100 (peak ~20k in the paper).
  LoadGenOptions options = FastOptions();
  options.horizon_seconds = 0.5;
  const LoadPoint point = RunOpenLoop(system.get(), dataset, 60000.0, options);
  EXPECT_TRUE(point.saturated);
  EXPECT_LT(point.achieved_rps, 0.8 * 60000.0);
}

TEST(LoadGenTest, SweepStopsAfterSaturation) {
  LstmScenario scenario;
  WmtLengthSampler sampler;
  Rng rng(3);
  const auto dataset = SampleChainDataset(2000, sampler, &rng);
  const auto points =
      SweepLoad([&] { return scenario.MakeBatchMaker(); }, dataset,
                {1000.0, 2000.0, 60000.0, 80000.0}, FastOptions());
  // The 60k point saturates; 80k must not run.
  ASSERT_EQ(points.size(), 3u);
  EXPECT_TRUE(points.back().saturated);
}

TEST(LoadGenTest, FormatTableContainsRows) {
  LoadPoint p;
  p.system = "X";
  p.offered_rps = 100;
  p.achieved_rps = 99;
  const std::string table = FormatLoadTable({p});
  EXPECT_NE(table.find("X"), std::string::npos);
  EXPECT_NE(table.find("99"), std::string::npos);
}

TEST(LoadGenTest, HelpersPickCorrectPoints) {
  LoadPoint a;
  a.offered_rps = 100;
  a.achieved_rps = 100;
  a.p90_ms = 5;
  LoadPoint b;
  b.offered_rps = 200;
  b.achieved_rps = 180;
  b.p90_ms = 9;
  EXPECT_DOUBLE_EQ(PeakThroughput({a, b}), 180.0);
  EXPECT_DOUBLE_EQ(LowLoadP90Ms({b, a}), 5.0);
}

// ---------- Directional paper claims, in miniature ----------

TEST(ComparisonTest, BatchMakerLatencyBelowPaddingAtModerateLoad) {
  // §7.2: "BatchMaker achieved significantly lower latency than MXNet and
  // TensorFlow" — driven by queueing-time reduction.
  LstmScenario scenario;
  WmtLengthSampler sampler;
  Rng rng(4);
  const auto dataset = SampleChainDataset(3000, sampler, &rng);
  auto bm = scenario.MakeBatchMaker();
  auto padding = LstmScenario::MakePadding();
  const LoadPoint bm_point = RunOpenLoop(bm.get(), dataset, 5000.0, FastOptions());
  const LoadPoint pad_point = RunOpenLoop(padding.get(), dataset, 5000.0, FastOptions());
  EXPECT_FALSE(bm_point.saturated);
  EXPECT_FALSE(pad_point.saturated);
  EXPECT_LT(bm_point.p90_ms, pad_point.p90_ms);
  // Queueing dominates the baseline's latency (paper Figure 9).
  EXPECT_LT(bm_point.queue_p99_ms, pad_point.queue_p99_ms);
}

TEST(ComparisonTest, BatchMakerQueueingTimeIsMilliseconds) {
  // §7.3: BatchMaker's 99p queueing time at 5k req/s is ~1.4ms while the
  // baselines' exceed 100ms... at moderate load ours must stay in the
  // low-millisecond range.
  LstmScenario scenario;
  WmtLengthSampler sampler;
  Rng rng(5);
  const auto dataset = SampleChainDataset(3000, sampler, &rng);
  auto bm = scenario.MakeBatchMaker();
  const LoadPoint point = RunOpenLoop(bm.get(), dataset, 5000.0, FastOptions());
  EXPECT_LT(point.queue_p99_ms, 10.0);
}

}  // namespace
}  // namespace batchmaker
