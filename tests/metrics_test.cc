// Tests for MetricsCollector: record fields, window filtering, throughput.

#include <gtest/gtest.h>

#include "src/core/metrics.h"

namespace batchmaker {
namespace {

RequestRecord MakeRecord(RequestId id, double arrival, double start, double done,
                         int nodes = 1) {
  RequestRecord r;
  r.id = id;
  r.arrival_micros = arrival;
  r.exec_start_micros = start;
  r.completion_micros = done;
  r.num_nodes = nodes;
  return r;
}

TEST(MetricsTest, RecordDerivedQuantities) {
  const RequestRecord r = MakeRecord(1, 100.0, 150.0, 400.0);
  EXPECT_DOUBLE_EQ(r.LatencyMicros(), 300.0);
  EXPECT_DOUBLE_EQ(r.QueueingMicros(), 50.0);
  EXPECT_DOUBLE_EQ(r.ComputeMicros(), 250.0);
}

TEST(MetricsTest, WindowFiltersByCompletion) {
  MetricsCollector m;
  // Completions at 200, 600, 1000.
  m.Record(MakeRecord(1, 100.0, 110.0, 200.0));
  m.Record(MakeRecord(2, 500.0, 510.0, 600.0));
  m.Record(MakeRecord(3, 900.0, 910.0, 1000.0));
  EXPECT_EQ(m.Latencies().Count(), 3u);
  EXPECT_EQ(m.Latencies(400.0, 950.0).Count(), 1u);   // only completion 600
  EXPECT_EQ(m.Latencies(0.0, 200.0).Count(), 0u);     // [from, to): 200 excluded
  EXPECT_EQ(m.Latencies(200.0, 201.0).Count(), 1u);
  // A request that arrived before the window but completed inside it is
  // counted — same keying as ThroughputRps, so windowed latency samples
  // describe exactly the requests the throughput number counts.
  EXPECT_EQ(m.Latencies(150.0, 650.0).Count(), 2u);
}

TEST(MetricsTest, QueueingAndComputeWindows) {
  MetricsCollector m;
  m.Record(MakeRecord(1, 0.0, 40.0, 100.0));
  m.Record(MakeRecord(2, 0.0, 10.0, 50.0));
  const SampleSet q = m.QueueingTimes();
  const SampleSet c = m.ComputeTimes();
  EXPECT_DOUBLE_EQ(q.Max(), 40.0);
  EXPECT_DOUBLE_EQ(q.Min(), 10.0);
  EXPECT_DOUBLE_EQ(c.Max(), 60.0);
}

TEST(MetricsTest, ThroughputCountsCompletionsInWindow) {
  MetricsCollector m;
  for (int i = 0; i < 10; ++i) {
    m.Record(MakeRecord(static_cast<RequestId>(i), 0.0, 0.0, i * 100.0 + 50.0));
  }
  // Completions at 50, 150, ..., 950. Window [0, 500): 5 completions over
  // 500us -> 10k rps.
  EXPECT_NEAR(m.ThroughputRps(0.0, 500.0), 5.0 / 500e-6, 1.0);
  EXPECT_DOUBLE_EQ(m.ThroughputRps(500.0, 500.0), 0.0);  // empty window
}

TEST(MetricsTest, ClearResets) {
  MetricsCollector m;
  m.Record(MakeRecord(1, 0.0, 0.0, 1.0));
  m.Clear();
  EXPECT_EQ(m.NumCompleted(), 0u);
  EXPECT_TRUE(m.Latencies().Empty());
}

}  // namespace
}  // namespace batchmaker
