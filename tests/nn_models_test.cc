// Tests for the extended model zoo: GRU, stacked LSTM, bidirectional LSTM
// — numerics against hand references, unfold structure, and scheduling
// behaviour of the 2-D stacked lattice.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/core/sim_engine.h"
#include "src/core/sync_engine.h"
#include "src/graph/executor.h"
#include "src/nn/gru.h"
#include "src/nn/stacked_lstm.h"
#include "src/util/rng.h"

namespace batchmaker {
namespace {

float SigmoidRef(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// ---------- GRU ----------

// Hand-rolled single-row GRU matching BuildGruCell's weight layout.
struct RefGru {
  std::vector<float> w_zr, b_zr, w_xn, w_hn, b_n;
  int64_t in_dim, hidden;

  void Step(const std::vector<float>& x, std::vector<float>* h) const {
    const int64_t d = in_dim + hidden;
    std::vector<float> gates(static_cast<size_t>(2 * hidden), 0.0f);
    for (int64_t r = 0; r < d; ++r) {
      const float v = r < in_dim ? x[static_cast<size_t>(r)]
                                 : (*h)[static_cast<size_t>(r - in_dim)];
      for (int64_t c = 0; c < 2 * hidden; ++c) {
        gates[static_cast<size_t>(c)] += v * w_zr[static_cast<size_t>(r * 2 * hidden + c)];
      }
    }
    std::vector<float> z(static_cast<size_t>(hidden));
    std::vector<float> r_gate(static_cast<size_t>(hidden));
    for (int64_t i = 0; i < hidden; ++i) {
      z[static_cast<size_t>(i)] =
          SigmoidRef(gates[static_cast<size_t>(i)] + b_zr[static_cast<size_t>(i)]);
      r_gate[static_cast<size_t>(i)] = SigmoidRef(gates[static_cast<size_t>(hidden + i)] +
                                                  b_zr[static_cast<size_t>(hidden + i)]);
    }
    std::vector<float> n(static_cast<size_t>(hidden), 0.0f);
    for (int64_t r = 0; r < in_dim; ++r) {
      for (int64_t c = 0; c < hidden; ++c) {
        n[static_cast<size_t>(c)] +=
            x[static_cast<size_t>(r)] * w_xn[static_cast<size_t>(r * hidden + c)];
      }
    }
    for (int64_t r = 0; r < hidden; ++r) {
      const float rh = r_gate[static_cast<size_t>(r)] * (*h)[static_cast<size_t>(r)];
      for (int64_t c = 0; c < hidden; ++c) {
        n[static_cast<size_t>(c)] += rh * w_hn[static_cast<size_t>(r * hidden + c)];
      }
    }
    for (int64_t i = 0; i < hidden; ++i) {
      const float cand =
          std::tanh(n[static_cast<size_t>(i)] + b_n[static_cast<size_t>(i)]);
      const float hi = (*h)[static_cast<size_t>(i)];
      (*h)[static_cast<size_t>(i)] =
          hi + z[static_cast<size_t>(i)] * (cand - hi);
    }
  }
};

RefGru ExtractGruWeights(const CellDef& def, int64_t in_dim, int64_t hidden) {
  RefGru ref;
  ref.in_dim = in_dim;
  ref.hidden = hidden;
  auto grab = [&def](const char* name) {
    for (int id = 0; id < def.NumOps(); ++id) {
      const OpNode& node = def.op(id);
      if (node.kind == OpKind::kParam && node.name == name) {
        return std::vector<float>(node.weight.f32(),
                                  node.weight.f32() + node.weight.NumElements());
      }
    }
    ADD_FAILURE() << "missing param " << name;
    return std::vector<float>();
  };
  ref.w_zr = grab("W_zr");
  ref.b_zr = grab("b_zr");
  ref.w_xn = grab("W_xn");
  ref.w_hn = grab("W_hn");
  ref.b_n = grab("b_n");
  return ref;
}

TEST(GruTest, CellMatchesReference) {
  Rng rng(31);
  const GruSpec spec{.input_dim = 3, .hidden = 4};
  auto def = BuildGruCell(spec, &rng);
  const RefGru ref = ExtractGruWeights(*def, 3, 4);
  const CellExecutor exec(def.get());

  Rng data_rng(32);
  const Tensor x = Tensor::RandomUniform(Shape{1, 3}, 1.0f, &data_rng);
  const Tensor h0 = Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng);
  const auto out = exec.Execute({&x, &h0});

  std::vector<float> h(h0.f32(), h0.f32() + 4);
  const std::vector<float> xv(x.f32(), x.f32() + 3);
  ref.Step(xv, &h);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(out[0].At(0, i), h[static_cast<size_t>(i)], 1e-5f) << "h[" << i << "]";
  }
}

TEST(GruTest, OutputBounded) {
  // h' is a convex combination of h and tanh(...) so stays in (-1, 1) when
  // h0 does.
  Rng rng(33);
  const GruSpec spec{.input_dim = 4, .hidden = 4};
  auto def = BuildGruCell(spec, &rng);
  const CellExecutor exec(def.get());
  Rng data_rng(34);
  Tensor h = Tensor::Zeros(Shape{1, 4});
  for (int step = 0; step < 20; ++step) {
    const Tensor x = Tensor::RandomUniform(Shape{1, 4}, 2.0f, &data_rng);
    auto out = exec.Execute({&x, &h});
    h = std::move(out[0]);
    for (int i = 0; i < 4; ++i) {
      EXPECT_LT(std::fabs(h.At(0, i)), 1.0f);
    }
  }
}

TEST(GruTest, UnfoldChainEndToEnd) {
  CellRegistry registry;
  Rng rng(35);
  const GruModel model(&registry, GruSpec{.input_dim = 4, .hidden = 4}, &rng);
  const CellGraph g = model.Unfold(5);
  EXPECT_EQ(g.NumNodes(), 5);
  g.Validate(registry, 6);

  // Through the sync engine against step-by-step execution.
  SyncEngine engine(&registry);
  Rng data_rng(36);
  std::vector<Tensor> xs;
  for (int t = 0; t < 5; ++t) {
    xs.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng));
  }
  std::vector<Tensor> externals = xs;
  externals.push_back(ExternalZeroVecTensor(4));
  const RequestId id =
      engine.Submit(model.Unfold(5), std::move(externals), {ValueRef::Output(4, 0)});
  engine.RunToCompletion();
  const auto outputs = engine.TakeResponse(id).outputs;

  const CellExecutor& exec = registry.executor(model.cell_type());
  Tensor h = Tensor::Zeros(Shape{1, 4});
  for (const Tensor& x : xs) {
    auto out = exec.Execute({&x, &h});
    h = std::move(out[0]);
  }
  EXPECT_TRUE(outputs[0].AllClose(h, 1e-5f));
}

// ---------- Stacked LSTM ----------

TEST(StackedLstmTest, RegistersOneTypePerLayer) {
  CellRegistry registry;
  Rng rng(41);
  const StackedLstmModel model(
      &registry, StackedLstmSpec{.input_dim = 4, .hidden = 4, .num_layers = 3}, &rng);
  EXPECT_EQ(registry.NumTypes(), 3);
  // Layers have distinct weights hence distinct types.
  EXPECT_NE(model.layer_type(0), model.layer_type(1));
  EXPECT_NE(model.layer_type(1), model.layer_type(2));
  // Deeper layers carry higher priority.
  EXPECT_GT(registry.info(model.layer_type(2)).priority,
            registry.info(model.layer_type(0)).priority);
}

TEST(StackedLstmTest, UnfoldLatticeStructure) {
  CellRegistry registry;
  Rng rng(42);
  const StackedLstmModel model(
      &registry, StackedLstmSpec{.input_dim = 4, .hidden = 4, .num_layers = 2}, &rng);
  const int length = 4;
  const CellGraph g = model.Unfold(length);
  EXPECT_EQ(g.NumNodes(), 8);
  g.Validate(registry, length + 2 * 2);
  // Layer-1 step-2 consumes layer-0 step-2's h and layer-1 step-1's state.
  const CellNode& node = g.node(StackedLstmModel::NodeId(length, 1, 2));
  EXPECT_EQ(node.inputs[0].node, StackedLstmModel::NodeId(length, 0, 2));
  EXPECT_EQ(node.inputs[1].node, StackedLstmModel::NodeId(length, 1, 1));
}

TEST(StackedLstmTest, MatchesManualTwoLayerRun) {
  CellRegistry registry;
  Rng rng(43);
  const StackedLstmModel model(
      &registry, StackedLstmSpec{.input_dim = 4, .hidden = 4, .num_layers = 2}, &rng);
  const int length = 6;

  Rng data_rng(44);
  std::vector<Tensor> xs;
  for (int t = 0; t < length; ++t) {
    xs.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng));
  }
  std::vector<Tensor> externals = xs;
  for (int l = 0; l < 2; ++l) {
    externals.push_back(ExternalZeroVecTensor(4));
    externals.push_back(ExternalZeroVecTensor(4));
  }
  SyncEngine engine(&registry);
  const int top_last = StackedLstmModel::NodeId(length, 1, length - 1);
  const RequestId id = engine.Submit(model.Unfold(length), std::move(externals),
                                     {ValueRef::Output(top_last, 0)});
  engine.RunToCompletion();
  const auto outputs = engine.TakeResponse(id).outputs;

  // Manual: run layer 0 over xs, then layer 1 over layer 0's h outputs.
  const CellExecutor& l0 = registry.executor(model.layer_type(0));
  const CellExecutor& l1 = registry.executor(model.layer_type(1));
  std::vector<Tensor> mid;
  Tensor h = Tensor::Zeros(Shape{1, 4});
  Tensor c = Tensor::Zeros(Shape{1, 4});
  for (const Tensor& x : xs) {
    auto out = l0.Execute({&x, &h, &c});
    h = out[0];
    c = out[1];
    mid.push_back(out[0]);
  }
  h = Tensor::Zeros(Shape{1, 4});
  c = Tensor::Zeros(Shape{1, 4});
  for (const Tensor& x : mid) {
    auto out = l1.Execute({&x, &h, &c});
    h = std::move(out[0]);
    c = std::move(out[1]);
  }
  EXPECT_TRUE(outputs[0].AllClose(h, 1e-5f));
}

TEST(StackedLstmTest, SubgraphReleaseIsPerLayer) {
  // Paper semantics (§4.3): a subgraph is released only once ALL its
  // external dependencies complete. Each layer is one subgraph, so a
  // single request's layer 1 starts only after its whole layer 0 finished:
  // makespan for one request is exactly 2L unit steps. (Pipelining happens
  // across requests — see LayersPipelineAcrossRequests.)
  CellRegistry registry;
  Rng rng(45);
  const StackedLstmModel model(
      &registry, StackedLstmSpec{.input_dim = 4, .hidden = 4, .num_layers = 2}, &rng);
  CostModel cost;
  cost.SetCurve(model.layer_type(0), UnitCostCurve());
  cost.SetCurve(model.layer_type(1), UnitCostCurve());
  SimEngineOptions options;
  options.num_workers = 2;
  options.scheduler.max_tasks_to_submit = 1;
  SimEngine engine(&registry, &cost, options);
  const int length = 10;
  engine.SubmitAt(0.0, model.Unfold(length));
  engine.Run();
  ASSERT_EQ(engine.metrics().NumCompleted(), 1u);
  EXPECT_DOUBLE_EQ(engine.metrics().records()[0].completion_micros, 2.0 * length);
}

TEST(StackedLstmTest, LayersPipelineAcrossRequests) {
  // Two staggered requests: request B's layer 0 can execute on the second
  // worker while request A's layer 1 runs on the first, so the combined
  // makespan is well below serial execution (4L for two 2-layer requests
  // on one worker).
  CellRegistry registry;
  Rng rng(46);
  const StackedLstmModel model(
      &registry, StackedLstmSpec{.input_dim = 4, .hidden = 4, .num_layers = 2}, &rng);
  CostModel cost;
  cost.SetCurve(model.layer_type(0), UnitCostCurve());
  cost.SetCurve(model.layer_type(1), UnitCostCurve());
  SimEngineOptions options;
  options.num_workers = 2;
  options.scheduler.max_tasks_to_submit = 1;
  SimEngine engine(&registry, &cost, options);
  const int length = 10;
  engine.SubmitAt(0.0, model.Unfold(length));
  engine.SubmitAt(0.5, model.Unfold(length));
  engine.Run();
  ASSERT_EQ(engine.metrics().NumCompleted(), 2u);
  double last = 0.0;
  for (const auto& r : engine.metrics().records()) {
    last = std::max(last, r.completion_micros);
  }
  EXPECT_LT(last, 3.0 * length);  // overlap beats the 4L serial bound
  EXPECT_GT(engine.workers().TasksExecuted(0), 0);
  EXPECT_GT(engine.workers().TasksExecuted(1), 0);
}

// ---------- Bidirectional LSTM ----------

TEST(BidiLstmTest, RegistersThreeTypes) {
  CellRegistry registry;
  Rng rng(51);
  const BidiLstmModel model(&registry, BidiLstmSpec{.input_dim = 4, .hidden = 4}, &rng);
  EXPECT_EQ(registry.NumTypes(), 3);
  EXPECT_NE(model.forward_type(), model.backward_type());
}

TEST(BidiLstmTest, UnfoldValidatesAndCombines) {
  CellRegistry registry;
  Rng rng(52);
  const BidiLstmModel model(&registry, BidiLstmSpec{.input_dim = 4, .hidden = 4}, &rng);
  const int length = 5;
  const CellGraph g = model.Unfold(length);
  EXPECT_EQ(g.NumNodes(), 3 * length);
  g.Validate(registry, length + 4);
  // Combiner for position 0 fuses forward node 0 and backward node
  // length + (length-1).
  const CellNode& comb = g.node(BidiLstmModel::CombinerNode(length, 0));
  EXPECT_EQ(comb.inputs[0].node, 0);
  EXPECT_EQ(comb.inputs[1].node, length + length - 1);
}

TEST(BidiLstmTest, MatchesManualBidirectionalRun) {
  CellRegistry registry;
  Rng rng(53);
  const BidiLstmModel model(&registry, BidiLstmSpec{.input_dim = 4, .hidden = 4}, &rng);
  const int length = 4;

  Rng data_rng(54);
  std::vector<Tensor> xs;
  for (int t = 0; t < length; ++t) {
    xs.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng));
  }
  std::vector<Tensor> externals = xs;
  for (int i = 0; i < 4; ++i) {
    externals.push_back(ExternalZeroVecTensor(4));
  }
  SyncEngine engine(&registry);
  std::vector<ValueRef> wanted;
  for (int t = 0; t < length; ++t) {
    wanted.push_back(ValueRef::Output(BidiLstmModel::CombinerNode(length, t), 0));
  }
  const RequestId id = engine.Submit(model.Unfold(length), std::move(externals), wanted);
  engine.RunToCompletion();
  const auto outputs = engine.TakeResponse(id).outputs;

  // Manual forward and backward passes.
  const CellExecutor& fwd = registry.executor(model.forward_type());
  const CellExecutor& bwd = registry.executor(model.backward_type());
  const CellExecutor& comb = registry.executor(model.combine_type());
  std::vector<Tensor> fwd_h(static_cast<size_t>(length));
  std::vector<Tensor> bwd_h(static_cast<size_t>(length));
  Tensor h = Tensor::Zeros(Shape{1, 4});
  Tensor c = Tensor::Zeros(Shape{1, 4});
  for (int t = 0; t < length; ++t) {
    auto out = fwd.Execute({&xs[static_cast<size_t>(t)], &h, &c});
    h = out[0];
    c = out[1];
    fwd_h[static_cast<size_t>(t)] = out[0];
  }
  h = Tensor::Zeros(Shape{1, 4});
  c = Tensor::Zeros(Shape{1, 4});
  for (int t = length - 1; t >= 0; --t) {
    auto out = bwd.Execute({&xs[static_cast<size_t>(t)], &h, &c});
    h = out[0];
    c = out[1];
    bwd_h[static_cast<size_t>(t)] = out[0];
  }
  for (int t = 0; t < length; ++t) {
    auto ref =
        comb.Execute({&fwd_h[static_cast<size_t>(t)], &bwd_h[static_cast<size_t>(t)]});
    EXPECT_TRUE(outputs[static_cast<size_t>(t)].AllClose(ref[0], 1e-5f))
        << "position " << t;
  }
}

TEST(BidiLstmTest, ChainsRunConcurrentlyInSim) {
  // Forward and backward chains are independent subgraphs: with two
  // workers they run in parallel, so the makespan for one request is far
  // below the 2*length+combiners serial bound. (It is not exactly
  // length+1: middle combiners become ready mid-run and the scheduler's
  // later-stage priority interleaves them with chain steps.)
  CellRegistry registry;
  Rng rng(55);
  const BidiLstmModel model(&registry, BidiLstmSpec{.input_dim = 4, .hidden = 4}, &rng);
  CostModel cost;
  for (CellTypeId t = 0; t < registry.NumTypes(); ++t) {
    cost.SetCurve(t, UnitCostCurve());
  }
  SimEngineOptions options;
  options.num_workers = 2;
  options.scheduler.max_tasks_to_submit = 1;
  SimEngine engine(&registry, &cost, options);
  const int length = 12;
  engine.SubmitAt(0.0, model.Unfold(length));
  engine.Run();
  ASSERT_EQ(engine.metrics().NumCompleted(), 1u);
  // Serial on one worker would be 2*length chain steps + combiner tasks.
  EXPECT_LT(engine.metrics().records()[0].completion_micros, 2.0 * length);
  EXPECT_GT(engine.workers().TasksExecuted(0), 0);
  EXPECT_GT(engine.workers().TasksExecuted(1), 0);
}

}  // namespace
}  // namespace batchmaker
