// Tests for src/nn: LSTM / Seq2Seq / TreeLSTM cell numerics (against
// hand-rolled references) and unfold structure.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/graph/executor.h"
#include "src/nn/lstm.h"
#include "src/nn/seq2seq.h"
#include "src/nn/tree_lstm.h"
#include "src/util/rng.h"

namespace batchmaker {
namespace {

float SigmoidRef(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// Hand-rolled single-row LSTM step for cross-checking the cell graph.
// Weights laid out as in BuildLstmCell: W [in+h, 4h] with gate order
// i, f, g, o; biases [4h].
struct RefLstm {
  std::vector<float> w;  // row-major [in_dim + hidden, 4*hidden]
  std::vector<float> b;
  int64_t in_dim;
  int64_t hidden;

  void Step(const std::vector<float>& x, std::vector<float>* h, std::vector<float>* c) const {
    const int64_t rows = in_dim + hidden;
    std::vector<float> gates(static_cast<size_t>(4 * hidden), 0.0f);
    std::vector<float> xh(static_cast<size_t>(rows));
    for (int64_t i = 0; i < in_dim; ++i) {
      xh[static_cast<size_t>(i)] = x[static_cast<size_t>(i)];
    }
    for (int64_t i = 0; i < hidden; ++i) {
      xh[static_cast<size_t>(in_dim + i)] = (*h)[static_cast<size_t>(i)];
    }
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t cix = 0; cix < 4 * hidden; ++cix) {
        gates[static_cast<size_t>(cix)] +=
            xh[static_cast<size_t>(r)] * w[static_cast<size_t>(r * 4 * hidden + cix)];
      }
    }
    for (int64_t i = 0; i < 4 * hidden; ++i) {
      gates[static_cast<size_t>(i)] += b[static_cast<size_t>(i)];
    }
    for (int64_t i = 0; i < hidden; ++i) {
      const float ig = SigmoidRef(gates[static_cast<size_t>(i)]);
      const float fg = SigmoidRef(gates[static_cast<size_t>(hidden + i)]);
      const float gg = std::tanh(gates[static_cast<size_t>(2 * hidden + i)]);
      const float og = SigmoidRef(gates[static_cast<size_t>(3 * hidden + i)]);
      const float c_new = fg * (*c)[static_cast<size_t>(i)] + ig * gg;
      (*c)[static_cast<size_t>(i)] = c_new;
      (*h)[static_cast<size_t>(i)] = og * std::tanh(c_new);
    }
  }
};

RefLstm ExtractRefWeights(const CellDef& def, int64_t in_dim, int64_t hidden) {
  // Find the W and b params by name.
  RefLstm ref;
  ref.in_dim = in_dim;
  ref.hidden = hidden;
  for (int id = 0; id < def.NumOps(); ++id) {
    const OpNode& node = def.op(id);
    if (node.kind == OpKind::kParam && node.name == "W") {
      ref.w.assign(node.weight.f32(), node.weight.f32() + node.weight.NumElements());
    }
    if (node.kind == OpKind::kParam && node.name == "b") {
      ref.b.assign(node.weight.f32(), node.weight.f32() + node.weight.NumElements());
    }
  }
  EXPECT_FALSE(ref.w.empty());
  EXPECT_FALSE(ref.b.empty());
  return ref;
}

// ---------- LSTM ----------

TEST(LstmTest, CellMatchesReference) {
  Rng rng(11);
  const LstmSpec spec{.input_dim = 5, .hidden = 4};
  auto def = BuildLstmCell(spec, &rng);
  const RefLstm ref = ExtractRefWeights(*def, spec.input_dim, spec.hidden);

  const CellExecutor exec(def.get());
  Rng data_rng(12);
  const Tensor x = Tensor::RandomUniform(Shape{1, 5}, 1.0f, &data_rng);
  const Tensor h0 = Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng);
  const Tensor c0 = Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng);
  const auto out = exec.Execute({&x, &h0, &c0});

  std::vector<float> h(h0.f32(), h0.f32() + 4);
  std::vector<float> c(c0.f32(), c0.f32() + 4);
  const std::vector<float> xv(x.f32(), x.f32() + 5);
  ref.Step(xv, &h, &c);

  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(out[0].At(0, i), h[static_cast<size_t>(i)], 1e-5f) << "h[" << i << "]";
    EXPECT_NEAR(out[1].At(0, i), c[static_cast<size_t>(i)], 1e-5f) << "c[" << i << "]";
  }
}

TEST(LstmTest, ZeroWeightsGiveKnownOutput) {
  // With all-zero W and b, gates are sigmoid(0)=0.5, g=tanh(0)=0, so
  // c' = 0.5*c and h' = 0.5*tanh(0.5*c).
  auto def = std::make_unique<CellDef>("z");
  const int x = def->AddInput("x", Shape{2});
  const int h_prev = def->AddInput("h_prev", Shape{2});
  const int c_prev = def->AddInput("c_prev", Shape{2});
  const int w = def->AddParam("W", Tensor::Zeros(Shape{4, 8}));
  const int b = def->AddParam("b", Tensor::Zeros(Shape{8}));
  const int xh = def->AddOp(OpKind::kConcat, "xh", {x, h_prev});
  const LstmCoreOps core = AddLstmCoreOps(def.get(), xh, c_prev, w, b, 2);
  def->MarkOutput(core.h);
  def->MarkOutput(core.c);
  def->Finalize();

  const CellExecutor exec(def.get());
  const Tensor xi = Tensor::FromVector(Shape{1, 2}, {1, 1});
  const Tensor hi = Tensor::FromVector(Shape{1, 2}, {1, 1});
  const Tensor ci = Tensor::FromVector(Shape{1, 2}, {0.8f, -0.4f});
  const auto out = exec.Execute({&xi, &hi, &ci});
  EXPECT_NEAR(out[1].At(0, 0), 0.4f, 1e-6f);
  EXPECT_NEAR(out[1].At(0, 1), -0.2f, 1e-6f);
  EXPECT_NEAR(out[0].At(0, 0), 0.5f * std::tanh(0.4f), 1e-6f);
}

TEST(LstmTest, UnfoldChainStructure) {
  CellRegistry registry;
  Rng rng(1);
  const LstmModel model(&registry, LstmSpec{.input_dim = 3, .hidden = 3}, &rng);
  const CellGraph g = model.Unfold(4);
  EXPECT_EQ(g.NumNodes(), 4);
  // Node 0 uses externals only; later nodes chain h/c.
  EXPECT_TRUE(g.node(0).inputs[1].is_external());
  EXPECT_FALSE(g.node(1).inputs[1].is_external());
  EXPECT_EQ(g.node(3).inputs[1].node, 2);
  EXPECT_EQ(g.node(3).inputs[2].output, 1);
  g.Validate(registry, /*num_externals=*/6);
}

TEST(LstmTest, ModelRegistersOneType) {
  CellRegistry registry;
  Rng rng(1);
  const LstmModel model(&registry, LstmSpec{.input_dim = 3, .hidden = 3}, &rng);
  EXPECT_EQ(registry.NumTypes(), 1);
  EXPECT_EQ(model.cell_type(), 0);
}

TEST(LstmTest, ChainedStepsMatchReference) {
  Rng rng(21);
  const LstmSpec spec{.input_dim = 3, .hidden = 3};
  auto def = BuildLstmCell(spec, &rng);
  const RefLstm ref = ExtractRefWeights(*def, 3, 3);
  const CellExecutor exec(def.get());

  Rng data_rng(22);
  std::vector<float> h(3, 0.0f);
  std::vector<float> c(3, 0.0f);
  Tensor ht = Tensor::Zeros(Shape{1, 3});
  Tensor ct = Tensor::Zeros(Shape{1, 3});
  for (int step = 0; step < 5; ++step) {
    const Tensor x = Tensor::RandomUniform(Shape{1, 3}, 1.0f, &data_rng);
    const auto out = exec.Execute({&x, &ht, &ct});
    ht = out[0];
    ct = out[1];
    const std::vector<float> xv(x.f32(), x.f32() + 3);
    ref.Step(xv, &h, &c);
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(ht.At(0, i), h[static_cast<size_t>(i)], 1e-4f);
  }
}

// ---------- Seq2Seq ----------

TEST(Seq2SeqTest, RegistersTwoTypesWithDecoderPriority) {
  CellRegistry registry;
  Rng rng(2);
  const Seq2SeqModel model(&registry,
                           Seq2SeqSpec{.vocab = 50, .embed_dim = 4, .hidden = 4}, &rng);
  EXPECT_EQ(registry.NumTypes(), 2);
  EXPECT_GT(registry.info(model.decoder_type()).priority,
            registry.info(model.encoder_type()).priority);
}

TEST(Seq2SeqTest, UnfoldShapeAndFeedPrevious) {
  CellRegistry registry;
  Rng rng(2);
  const Seq2SeqModel model(&registry,
                           Seq2SeqSpec{.vocab = 50, .embed_dim = 4, .hidden = 4}, &rng);
  const CellGraph g = model.Unfold(3, 2);
  EXPECT_EQ(g.NumNodes(), 5);
  EXPECT_EQ(g.node(2).type, model.encoder_type());
  EXPECT_EQ(g.node(3).type, model.decoder_type());
  // First decoder consumes the <go> external and encoder state.
  EXPECT_TRUE(g.node(3).inputs[0].is_external());
  EXPECT_EQ(g.node(3).inputs[1].node, 2);
  // Second decoder consumes the previous decoder's token output (index 2).
  EXPECT_EQ(g.node(4).inputs[0].node, 3);
  EXPECT_EQ(g.node(4).inputs[0].output, 2);
  g.Validate(registry, 6);
}

TEST(Seq2SeqTest, DecoderEmitsTokenInVocabRange) {
  CellRegistry registry;
  Rng rng(3);
  const Seq2SeqSpec spec{.vocab = 20, .embed_dim = 4, .hidden = 4};
  const Seq2SeqModel model(&registry, spec, &rng);
  const CellExecutor& exec = registry.executor(model.decoder_type());
  const Tensor token = Tensor::FromIntVector(Shape{1, 1}, {5});
  const Tensor h = Tensor::Zeros(Shape{1, 4});
  const Tensor c = Tensor::Zeros(Shape{1, 4});
  const auto out = exec.Execute({&token, &h, &c});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2].dtype(), DType::kI32);
  EXPECT_GE(out[2].IntAt(0, 0), 0);
  EXPECT_LT(out[2].IntAt(0, 0), 20);
}

TEST(Seq2SeqTest, EncoderDecoderDoNotShareWeights) {
  CellRegistry registry;
  Rng rng(4);
  const Seq2SeqModel model(&registry,
                           Seq2SeqSpec{.vocab = 10, .embed_dim = 3, .hidden = 3}, &rng);
  EXPECT_NE(model.encoder_type(), model.decoder_type());
}

// ---------- BinaryTree ----------

TEST(BinaryTreeTest, CompleteTreeCounts) {
  const BinaryTree tree = BinaryTree::Complete(16);
  tree.Validate();
  EXPECT_EQ(tree.NumLeaves(), 16);
  EXPECT_EQ(tree.NumInternal(), 15);
  EXPECT_EQ(tree.NumNodes(), 31);
  EXPECT_EQ(tree.Depth(), 5);
}

TEST(BinaryTreeTest, SingleLeafComplete) {
  const BinaryTree tree = BinaryTree::Complete(1);
  tree.Validate();
  EXPECT_EQ(tree.NumNodes(), 1);
  EXPECT_EQ(tree.Depth(), 1);
}

TEST(BinaryTreeTest, RandomParseHasCorrectLeafCount) {
  Rng rng(5);
  for (int leaves : {1, 2, 7, 24, 60}) {
    const BinaryTree tree = BinaryTree::RandomParse(leaves, 100, &rng);
    tree.Validate();
    EXPECT_EQ(tree.NumLeaves(), leaves);
    EXPECT_EQ(tree.NumInternal(), leaves - 1);
  }
}

TEST(BinaryTreeTest, RandomParseTokensInRange) {
  Rng rng(6);
  const BinaryTree tree = BinaryTree::RandomParse(20, 7, &rng);
  for (const auto& n : tree.nodes) {
    if (n.is_leaf()) {
      EXPECT_GE(n.token, 0);
      EXPECT_LT(n.token, 7);
    }
  }
}

TEST(BinaryTreeDeathTest, ValidateRejectsOneChild) {
  BinaryTree tree;
  tree.nodes.push_back(BinaryTree::Node{});
  BinaryTree::Node bad;
  bad.left = 0;
  tree.nodes.push_back(bad);
  tree.root = 1;
  EXPECT_DEATH(tree.Validate(), "0 or 2 children");
}

// ---------- TreeLSTM ----------

TEST(TreeLstmTest, RegistersTwoTypesWithInternalPriority) {
  CellRegistry registry;
  Rng rng(7);
  const TreeLstmModel model(&registry,
                            TreeLstmSpec{.vocab = 30, .embed_dim = 4, .hidden = 4}, &rng);
  EXPECT_EQ(registry.NumTypes(), 2);
  EXPECT_GT(registry.info(model.internal_type()).priority,
            registry.info(model.leaf_type()).priority);
}

TEST(TreeLstmTest, UnfoldCompleteTree) {
  CellRegistry registry;
  Rng rng(7);
  const TreeLstmModel model(&registry,
                            TreeLstmSpec{.vocab = 30, .embed_dim = 4, .hidden = 4}, &rng);
  const BinaryTree tree = BinaryTree::Complete(16);
  const CellGraph g = model.Unfold(tree);
  EXPECT_EQ(g.NumNodes(), 31);
  int leaves = 0;
  int internals = 0;
  for (int i = 0; i < g.NumNodes(); ++i) {
    if (g.node(i).type == model.leaf_type()) {
      ++leaves;
    } else {
      ++internals;
    }
  }
  EXPECT_EQ(leaves, 16);
  EXPECT_EQ(internals, 15);
  g.Validate(registry, 16);
}

TEST(TreeLstmTest, InternalCellCombinesChildren) {
  CellRegistry registry;
  Rng rng(8);
  const TreeLstmSpec spec{.vocab = 10, .embed_dim = 3, .hidden = 3};
  const TreeLstmModel model(&registry, spec, &rng);
  const CellExecutor& exec = registry.executor(model.internal_type());
  Rng data_rng(9);
  const Tensor hl = Tensor::RandomUniform(Shape{1, 3}, 1.0f, &data_rng);
  const Tensor cl = Tensor::RandomUniform(Shape{1, 3}, 1.0f, &data_rng);
  const Tensor hr = Tensor::RandomUniform(Shape{1, 3}, 1.0f, &data_rng);
  const Tensor cr = Tensor::RandomUniform(Shape{1, 3}, 1.0f, &data_rng);
  const auto out = exec.Execute({&hl, &cl, &hr, &cr});
  ASSERT_EQ(out.size(), 2u);
  // Outputs must be bounded: h = sigmoid * tanh in (-1, 1).
  for (int i = 0; i < 3; ++i) {
    EXPECT_LT(std::fabs(out[0].At(0, i)), 1.0f);
  }
  // Not symmetric in children (separate forget gates).
  const auto swapped = exec.Execute({&hr, &cr, &hl, &cl});
  EXPECT_FALSE(out[0].AllClose(swapped[0], 1e-6f));
}

TEST(TreeLstmTest, UnfoldRandomTreeValidates) {
  CellRegistry registry;
  Rng rng(10);
  const TreeLstmModel model(&registry,
                            TreeLstmSpec{.vocab = 30, .embed_dim = 4, .hidden = 4}, &rng);
  for (int leaves : {1, 2, 9, 33}) {
    const BinaryTree tree = BinaryTree::RandomParse(leaves, 30, &rng);
    const CellGraph g = model.Unfold(tree);
    EXPECT_EQ(g.NumNodes(), 2 * leaves - 1);
    g.Validate(registry, leaves);
  }
}

}  // namespace
}  // namespace batchmaker
