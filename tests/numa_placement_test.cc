// Server-level tests for NUMA-aware placement (DESIGN.md "NUMA-aware
// placement"), driven entirely through a checked-in fake 2-node sysfs tree
// (EngineOptions::numa_sysfs_root) so single-node CI hosts exercise the
// multi-node paths:
//   * worker -> node mapping and node-aligned shard boundaries;
//   * graceful pin degradation (a node whose cpus this host lacks reports
//     unpinned, and the server keeps serving);
//   * the bitwise contract — every policy produces outputs identical to
//     numa_policy = none and to the serial SyncEngine;
//   * refcounted per-node weight-pack replica lifecycle on CellExecutor.

#include <gtest/gtest.h>

#ifdef __linux__
#include <sched.h>
#endif

#include <future>
#include <string>
#include <vector>

#include "src/core/server.h"
#include "src/core/sync_engine.h"
#include "src/graph/executor.h"
#include "src/nn/lstm.h"
#include "src/util/rng.h"
#include "src/util/topology.h"
#include "tests/test_models.h"

namespace batchmaker {
namespace {

std::string FakeSysfsRoot(const std::string& tree) {
  return std::string(BM_TESTDATA_DIR) + "/" + tree;
}

struct RequestSpec {
  int length;
  std::vector<Tensor> xs;
};

std::vector<RequestSpec> MakeRequests(int count, int64_t input_dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<RequestSpec> reqs;
  for (int i = 0; i < count; ++i) {
    RequestSpec spec;
    spec.length = 1 + static_cast<int>(rng.NextBelow(8));
    for (int t = 0; t < spec.length; ++t) {
      spec.xs.push_back(Tensor::RandomUniform(Shape{1, input_dim}, 1.0f, &rng));
    }
    reqs.push_back(std::move(spec));
  }
  return reqs;
}

std::vector<Tensor> ChainExternals(const RequestSpec& spec, int64_t hidden) {
  std::vector<Tensor> ext = spec.xs;
  ext.push_back(ExternalZeroVecTensor(hidden));
  ext.push_back(ExternalZeroVecTensor(hidden));
  return ext;
}

// Runs `requests` through a Server under the given placement policy and
// returns each request's outputs (final h and c).
std::vector<std::vector<Tensor>> RunServer(const std::vector<RequestSpec>& requests,
                                           NumaPolicy policy, int workers,
                                           int shards) {
  TinyLstmFixture fix;
  constexpr int64_t kHidden = 4;
  ServerOptions options;
  options.num_workers = workers;
  options.num_shards = shards;
  options.numa_policy = policy;
  options.numa_sysfs_root = FakeSysfsRoot("sysfs_2node");
  Server server(&fix.registry, options);
  server.Start();

  const int count = static_cast<int>(requests.size());
  std::vector<std::promise<std::vector<Tensor>>> promises(requests.size());
  std::vector<std::future<std::vector<Tensor>>> futures;
  for (int i = 0; i < count; ++i) {
    futures.push_back(promises[static_cast<size_t>(i)].get_future());
  }
  for (int i = 0; i < count; ++i) {
    const RequestSpec& spec = requests[static_cast<size_t>(i)];
    auto* promise = &promises[static_cast<size_t>(i)];
    server.Submit(fix.model.Unfold(spec.length), ChainExternals(spec, kHidden),
                  {ValueRef::Output(spec.length - 1, 0),
                   ValueRef::Output(spec.length - 1, 1)},
                  [promise](RequestId, RequestStatus, std::vector<Tensor> outputs) {
                    promise->set_value(std::move(outputs));
                  });
  }
  std::vector<std::vector<Tensor>> outputs;
  for (int i = 0; i < count; ++i) {
    outputs.push_back(futures[static_cast<size_t>(i)].get());
  }
  server.Shutdown();
  return outputs;
}

TEST(NumaPlacementTest, WorkerNodeMappingFollowsFakeTopology) {
  TinyLstmFixture fix;
  ServerOptions options;
  options.num_workers = 4;
  options.num_shards = 2;
  options.numa_policy = NumaPolicy::kPin;
  options.numa_sysfs_root = FakeSysfsRoot("sysfs_2node");
  Server server(&fix.registry, options);
  server.Start();

  EXPECT_EQ(server.NumaNodes(), 2);
  EXPECT_EQ(server.topology().nodes.size(), 2u);
  EXPECT_TRUE(server.topology().from_sysfs);
  // 4 workers over 2 nodes: the first half on node index 0, the rest on 1.
  EXPECT_EQ(server.WorkerNode(0), 0);
  EXPECT_EQ(server.WorkerNode(1), 0);
  EXPECT_EQ(server.WorkerNode(2), 1);
  EXPECT_EQ(server.WorkerNode(3), 1);

  // The fake tree claims cpus this host may not have; pinning must degrade
  // per worker without disabling the server. A worker may only report
  // pinned when its node's cpu set intersects this process's allowed set.
#ifdef __linux__
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  ASSERT_EQ(sched_getaffinity(0, sizeof(allowed), &allowed), 0);
  for (int w = 0; w < 4; ++w) {
    bool node_reachable = false;
    const NumaNode& node =
        server.topology().nodes[static_cast<size_t>(server.WorkerNode(w))];
    for (const int cpu : node.cpus) {
      if (cpu < CPU_SETSIZE && CPU_ISSET(cpu, &allowed)) {
        node_reachable = true;
        break;
      }
    }
    if (!node_reachable) {
      EXPECT_FALSE(server.WorkerPinnedOk(w)) << "worker " << w;
    }
  }
#endif
  EXPECT_GE(server.NumPinnedWorkers(), 0);
  EXPECT_LE(server.NumPinnedWorkers(), 4);

  // The degraded server still serves correctly.
  Rng data_rng(9);
  std::vector<Tensor> xs;
  for (int t = 0; t < 3; ++t) {
    xs.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng));
  }
  std::vector<Tensor> ext = xs;
  ext.push_back(ExternalZeroVecTensor(4));
  ext.push_back(ExternalZeroVecTensor(4));
  const Response res =
      server.SubmitAndWait(fix.model.Unfold(3), std::move(ext), {ValueRef::Output(2, 0)});
  EXPECT_TRUE(res.ok());
  server.Shutdown();
}

TEST(NumaPlacementTest, PolicyNoneReportsSingleNodeView) {
  TinyLstmFixture fix;
  ServerOptions options;
  options.num_workers = 2;
  options.numa_policy = NumaPolicy::kNone;
  options.numa_sysfs_root = FakeSysfsRoot("sysfs_2node");
  Server server(&fix.registry, options);
  server.Start();
  // none = no discovery at all: the fake tree must not even be read.
  EXPECT_EQ(server.NumaNodes(), 1);
  EXPECT_EQ(server.WorkerNode(0), -1);
  EXPECT_EQ(server.WorkerNode(1), -1);
  EXPECT_EQ(server.NumPinnedWorkers(), 0);
  EXPECT_EQ(server.CrossNodeSteals(), 0);
  EXPECT_EQ(server.RemoteGatherBytes(), 0);
  server.Shutdown();
}

TEST(NumaPlacementTest, AllPoliciesBitwiseIdenticalToSyncEngine) {
  constexpr int kRequests = 16;
  constexpr int64_t kHidden = 4;
  const auto requests = MakeRequests(kRequests, /*input_dim=*/4, /*seed=*/55);

  // Serial reference.
  TinyLstmFixture ref_fix;
  std::vector<std::vector<Tensor>> ref_outputs(kRequests);
  {
    SyncEngine engine(&ref_fix.registry);
    std::vector<RequestId> ids;
    for (const RequestSpec& spec : requests) {
      ids.push_back(engine.Submit(ref_fix.model.Unfold(spec.length),
                                  ChainExternals(spec, kHidden),
                                  {ValueRef::Output(spec.length - 1, 0),
                                   ValueRef::Output(spec.length - 1, 1)}));
    }
    engine.RunToCompletion();
    for (int i = 0; i < kRequests; ++i) {
      ref_outputs[static_cast<size_t>(i)] =
          engine.TakeResponse(ids[static_cast<size_t>(i)]).outputs;
    }
  }

  for (const NumaPolicy policy :
       {NumaPolicy::kNone, NumaPolicy::kPin, NumaPolicy::kPinReplicate}) {
    const auto outputs = RunServer(requests, policy, /*workers=*/4, /*shards=*/2);
    ASSERT_EQ(outputs.size(), static_cast<size_t>(kRequests));
    for (int i = 0; i < kRequests; ++i) {
      const auto& got = outputs[static_cast<size_t>(i)];
      const auto& want = ref_outputs[static_cast<size_t>(i)];
      ASSERT_EQ(got.size(), want.size()) << NumaPolicyName(policy);
      for (size_t j = 0; j < got.size(); ++j) {
        EXPECT_TRUE(got[j].ElementsEqual(want[j]))
            << "policy " << NumaPolicyName(policy) << " request " << i
            << " output " << j << " differs bitwise";
      }
    }
  }
}

TEST(NumaPlacementTest, ReplicaLifecycleIsRefcounted) {
  TinyLstmFixture fix;
  const CellExecutor& exec = fix.registry.executor(fix.model.cell_type());
  exec.EnsurePacked(Precision::kF32);
  EXPECT_EQ(exec.NumNodeReplicas(), 0);

  exec.AcquireNodeReplica(/*node=*/1, Precision::kF32);
  EXPECT_EQ(exec.NumNodeReplicas(), 1);
  EXPECT_TRUE(exec.HasNodeReplica(1, Precision::kF32));
  EXPECT_FALSE(exec.HasNodeReplica(0, Precision::kF32));

  // Second acquirer on the same node shares the replica.
  exec.AcquireNodeReplica(1, Precision::kF32);
  EXPECT_EQ(exec.NumNodeReplicas(), 1);

  // A different node gets its own copy.
  exec.AcquireNodeReplica(0, Precision::kF32);
  EXPECT_EQ(exec.NumNodeReplicas(), 2);

  exec.ReleaseNodeReplica(1);
  EXPECT_EQ(exec.NumNodeReplicas(), 2);  // one ref on node 1 still held
  exec.ReleaseNodeReplica(1);
  EXPECT_EQ(exec.NumNodeReplicas(), 1);
  EXPECT_FALSE(exec.HasNodeReplica(1, Precision::kF32));
  exec.ReleaseNodeReplica(0);
  EXPECT_EQ(exec.NumNodeReplicas(), 0);
}

TEST(NumaPlacementTest, ServerReleasesReplicasOnShutdown) {
  TinyLstmFixture fix;
  ServerOptions options;
  options.num_workers = 2;
  options.numa_policy = NumaPolicy::kPinReplicate;
  options.numa_sysfs_root = FakeSysfsRoot("sysfs_2node");
  Server server(&fix.registry, options);
  server.Start();

  Rng data_rng(13);
  std::vector<Tensor> xs;
  for (int t = 0; t < 4; ++t) {
    xs.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng));
  }
  std::vector<Tensor> ext = xs;
  ext.push_back(ExternalZeroVecTensor(4));
  ext.push_back(ExternalZeroVecTensor(4));
  const Response res =
      server.SubmitAndWait(fix.model.Unfold(4), std::move(ext), {ValueRef::Output(3, 0)});
  EXPECT_TRUE(res.ok());

  // Exec threads hold node replicas while the server runs...
  EXPECT_GT(fix.registry.executor(fix.model.cell_type()).NumNodeReplicas(), 0);
  server.Shutdown();
  // ...and the last worker of each node frees them on the way out.
  EXPECT_EQ(fix.registry.executor(fix.model.cell_type()).NumNodeReplicas(), 0);
}

}  // namespace
}  // namespace batchmaker
