// Tests for the observability layer (src/obs/): TraceRecorder semantics,
// thread safety, Chrome trace_event export and trace-derived stage
// breakdowns, plus end-to-end integration with SimEngine.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "src/core/server.h"
#include "src/core/sim_engine.h"
#include "src/obs/trace.h"
#include "src/obs/trace_export.h"
#include "src/util/json.h"
#include "tests/test_models.h"

namespace batchmaker {
namespace {

CostModel UnitCostModel(const CellRegistry& registry) {
  CostModel model;
  for (CellTypeId t = 0; t < registry.NumTypes(); ++t) {
    model.SetCurve(t, UnitCostCurve());
  }
  return model;
}

TEST(TraceRecorderTest, DisabledRecorderRecordsNothing) {
  TraceRecorder trace;  // no clock: the explicit-ts overloads still work
  EXPECT_FALSE(trace.enabled());
  trace.RequestArrival(/*ts=*/1.0, /*id=*/1, /*num_nodes=*/3);
  trace.ExecBegin(/*ts=*/2.0, /*task_id=*/1, /*type=*/0, /*worker=*/0, /*batch_size=*/1);
  trace.ExecEnd(/*task_id=*/1, /*type=*/0, /*worker=*/0, /*batch_size=*/1);
  trace.RequestComplete(/*id=*/1, /*exec_start_micros=*/2.0);
  EXPECT_EQ(trace.NumEvents(), 0u);
  EXPECT_EQ(trace.Count(TraceEventKind::kRequestArrival), 0);
  EXPECT_EQ(trace.Count(TraceEventKind::kExecBegin), 0);
}

TEST(TraceRecorderTest, CountersAndHistogramsTrackEvents) {
  TraceRecorder trace;
  trace.Enable();
  trace.RequestArrival(/*ts=*/0.0, /*id=*/1, /*num_nodes=*/4);
  trace.TaskFormed(/*task_id=*/1, /*type=*/0, /*worker=*/0, /*batch_size=*/1,
                   SchedCriterion::kAnyReady);
  trace.TaskFormed(/*task_id=*/2, /*type=*/0, /*worker=*/0, /*batch_size=*/4,
                   SchedCriterion::kFullBatch);
  trace.TaskFormed(/*task_id=*/3, /*type=*/0, /*worker=*/1, /*batch_size=*/5,
                   SchedCriterion::kStarvedType);
  trace.RequestComplete(/*id=*/1, /*exec_start_micros=*/1.0);
  EXPECT_EQ(trace.Count(TraceEventKind::kRequestArrival), 1);
  EXPECT_EQ(trace.Count(TraceEventKind::kTaskFormed), 3);
  EXPECT_EQ(trace.Count(TraceEventKind::kRequestComplete), 1);
  EXPECT_EQ(trace.NumEvents(), 5u);
  // Batch sizes 1, 4, 5 -> buckets 0 ([1,2)), 2 ([4,8)), 2.
  EXPECT_EQ(trace.BatchSizeBucket(0), 1);
  EXPECT_EQ(trace.BatchSizeBucket(1), 0);
  EXPECT_EQ(trace.BatchSizeBucket(2), 2);
  trace.Clear();
  EXPECT_EQ(trace.NumEvents(), 0u);
  EXPECT_EQ(trace.Count(TraceEventKind::kTaskFormed), 0);
  EXPECT_EQ(trace.BatchSizeBucket(2), 0);
}

TEST(TraceRecorderTest, OccupancySampledAtExecBegin) {
  TraceRecorder trace;
  trace.Enable();
  // Two overlapping spans: the second ExecBegin sees 2 busy workers.
  trace.ExecBegin(/*ts=*/0.0, /*task_id=*/1, /*type=*/0, /*worker=*/0, /*batch_size=*/1);
  trace.ExecBegin(/*ts=*/1.0, /*task_id=*/2, /*type=*/0, /*worker=*/1, /*batch_size=*/1);
  trace.ExecEnd(/*task_id=*/1, /*type=*/0, /*worker=*/0, /*batch_size=*/1);
  trace.ExecEnd(/*task_id=*/2, /*type=*/0, /*worker=*/1, /*batch_size=*/1);
  EXPECT_EQ(trace.OccupancyBucket(1), 1);
  EXPECT_EQ(trace.OccupancyBucket(2), 1);
}

TEST(TraceRecorderTest, SortedEventsOrderedByTimestamp) {
  TraceRecorder trace;
  trace.Enable();
  trace.RequestArrival(/*ts=*/5.0, /*id=*/2, /*num_nodes=*/1);
  trace.RequestArrival(/*ts=*/1.0, /*id=*/1, /*num_nodes=*/1);
  trace.ExecBegin(/*ts=*/3.0, /*task_id=*/9, /*type=*/0, /*worker=*/0, /*batch_size=*/1);
  const std::vector<TraceEvent> events = trace.SortedEvents();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.ts_micros < b.ts_micros;
                             }));
  EXPECT_EQ(events[0].id, 1u);
  EXPECT_EQ(events[2].id, 2u);
}

TEST(TraceRecorderTest, ConcurrentRecordingLosesNoEvents) {
  TraceRecorder trace;
  trace.Enable();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t id = static_cast<uint64_t>(t) * kPerThread + i;
        trace.RequestArrival(/*ts=*/static_cast<double>(i), id, /*num_nodes=*/1);
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  EXPECT_EQ(trace.NumEvents(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(trace.Count(TraceEventKind::kRequestArrival), kThreads * kPerThread);
  // Every id recorded exactly once.
  std::set<uint64_t> ids;
  for (const TraceEvent& e : trace.SortedEvents()) {
    ids.insert(e.id);
  }
  EXPECT_EQ(ids.size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST(TraceExportTest, ChromeTraceJsonHasExpectedEvents) {
  // Fake clock ticking one microsecond per event keeps the stream ordered.
  double now = 0.0;
  TraceRecorder trace([&now] { return now += 1.0; });
  trace.Enable();
  trace.RequestArrival(/*ts=*/0.0, /*id=*/7, /*num_nodes=*/2);
  trace.TaskFormed(/*task_id=*/1, /*type=*/0, /*worker=*/0, /*batch_size=*/1,
                   SchedCriterion::kAnyReady);
  trace.ExecBegin(/*ts=*/2.0, /*task_id=*/1, /*type=*/0, /*worker=*/0, /*batch_size=*/1);
  trace.ExecEnd(/*task_id=*/1, /*type=*/0, /*worker=*/0, /*batch_size=*/1);
  trace.RequestComplete(/*id=*/7, /*exec_start_micros=*/2.0);

  const Json doc = ChromeTraceJson(trace, [](CellTypeId) { return std::string("lstm"); });
  // Round-trip through the serializer: the output must be valid JSON.
  const Json parsed = Json::Parse(doc.Dump());
  const Json& events = parsed.Get("traceEvents");
  ASSERT_TRUE(events.is_array());
  int complete_spans = 0, async_begin = 0, async_end = 0, instants = 0;
  for (size_t i = 0; i < events.Size(); ++i) {
    const std::string ph = events.At(i).Get("ph").AsString();
    if (ph == "X") ++complete_spans;
    if (ph == "b") ++async_begin;
    if (ph == "e") ++async_end;
    if (ph == "i") ++instants;
  }
  EXPECT_EQ(complete_spans, 1);  // one exec span
  EXPECT_EQ(async_begin, 1);     // request 7 lifetime begin
  EXPECT_EQ(async_end, 1);       // request 7 lifetime end
  EXPECT_GE(instants, 1);        // task formation
}

TEST(TraceExportTest, WriteChromeTraceRoundTrips) {
  TraceRecorder trace;
  trace.Enable();
  trace.RequestArrival(/*ts=*/0.0, /*id=*/1, /*num_nodes=*/1);
  trace.RequestComplete(/*id=*/1, /*exec_start_micros=*/0.5);
  const std::string path = "obs_test.trace.json";
  ASSERT_TRUE(WriteChromeTrace(trace, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const Json parsed = Json::Parse(buffer.str());
  EXPECT_TRUE(parsed.Get("traceEvents").is_array());
  std::remove(path.c_str());
}

TEST(TraceExportTest, BreakdownFromTraceMatchesStages) {
  TraceRecorder trace;
  trace.Enable();
  // Request 1: arrival 0, first exec 40, completion 100.
  trace.RequestArrival(/*ts=*/0.0, /*id=*/1, /*num_nodes=*/1);
  trace.ExecBegin(/*ts=*/40.0, /*task_id=*/1, /*type=*/0, /*worker=*/0, /*batch_size=*/1);
  trace.ExecEnd(/*task_id=*/1, /*type=*/0, /*worker=*/0, /*batch_size=*/1);
  // RequestComplete's clock is unset, so stamp completion via a clocked
  // recorder instead: use set_clock to fake completion time.
  trace.set_clock([] { return 100.0; });
  trace.RequestComplete(/*id=*/1, /*exec_start_micros=*/40.0);

  const TraceStageBreakdown breakdown = BreakdownFromTrace(trace);
  ASSERT_EQ(breakdown.total.Count(), 1u);
  EXPECT_DOUBLE_EQ(breakdown.queueing.Max(), 40.0);
  EXPECT_DOUBLE_EQ(breakdown.compute.Max(), 60.0);
  EXPECT_DOUBLE_EQ(breakdown.total.Max(), 100.0);
  // Window keyed by completion: a window ending before 100 excludes it.
  EXPECT_EQ(BreakdownFromTrace(trace, 0.0, 99.0).total.Count(), 0u);
}

TEST(TraceExportTest, PipelineEventsExport) {
  // The pipelined-stream event kinds: stream refills export as instants,
  // gather begin/end pairs and worker idle gaps as complete ("X") spans.
  TraceRecorder trace;
  trace.Enable();
  trace.set_clock([] { return 1.0; });
  trace.StreamRefill(/*worker=*/0, /*num_tasks=*/2);
  trace.GatherBegin(/*task_id=*/1, /*type=*/0, /*worker=*/0, /*batch_size=*/3);
  trace.set_clock([] { return 4.0; });
  trace.GatherEnd(/*task_id=*/1, /*type=*/0, /*worker=*/0, /*batch_size=*/3);
  trace.WorkerIdle(/*begin_micros=*/5.0, /*end_micros=*/9.0, /*worker=*/1);

  EXPECT_EQ(trace.Count(TraceEventKind::kStreamRefill), 1);
  EXPECT_EQ(trace.Count(TraceEventKind::kGatherBegin), 1);
  EXPECT_EQ(trace.Count(TraceEventKind::kGatherEnd), 1);
  EXPECT_EQ(trace.Count(TraceEventKind::kWorkerIdle), 1);

  const Json doc = ChromeTraceJson(trace);
  const Json parsed = Json::Parse(doc.Dump());
  const Json& events = parsed.Get("traceEvents");
  int gather_spans = 0, idle_spans = 0, refill_instants = 0;
  for (size_t i = 0; i < events.Size(); ++i) {
    const Json& e = events.At(i);
    if (e.Get("ph").AsString() != "M" && e.Get("name").AsString() == "stream_refill") {
      ++refill_instants;
      EXPECT_EQ(e.Get("ph").AsString(), "i");
    }
    if (e.Get("ph").AsString() == "X") {
      const std::string cat = e.Get("cat").AsString();
      if (cat == "gather") {
        ++gather_spans;
        EXPECT_DOUBLE_EQ(e.Get("ts").AsDouble(), 1.0);
        EXPECT_DOUBLE_EQ(e.Get("dur").AsDouble(), 3.0);
      } else if (cat == "idle") {
        ++idle_spans;
        EXPECT_DOUBLE_EQ(e.Get("ts").AsDouble(), 5.0);
        EXPECT_DOUBLE_EQ(e.Get("dur").AsDouble(), 4.0);
      }
    }
  }
  EXPECT_EQ(refill_instants, 1);
  EXPECT_EQ(gather_spans, 1);
  EXPECT_EQ(idle_spans, 1);
}

TEST(TraceIntegrationTest, ServerTracesPipelinedStreams) {
  // End to end on the real server: every executed task was refilled into a
  // stream and gathered by the staging thread, so the pipeline event
  // counts line up with the exec spans.
  TinyLstmFixture fix;
  ServerOptions options;
  options.num_workers = 2;
  options.pipeline_depth = 2;
  options.enable_tracing = true;
  Server server(&fix.registry, options);
  server.Start();
  Rng data_rng(11);
  for (int i = 0; i < 6; ++i) {
    std::vector<Tensor> ext;
    for (int t = 0; t < 3; ++t) {
      ext.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng));
    }
    ext.push_back(ExternalZeroVecTensor(4));
    ext.push_back(ExternalZeroVecTensor(4));
    server.SubmitAndWait(fix.model.Unfold(3), std::move(ext), {ValueRef::Output(2, 0)});
  }
  server.Shutdown();

  const TraceRecorder& trace = server.trace();
  const int64_t execs = trace.Count(TraceEventKind::kExecBegin);
  EXPECT_GT(execs, 0);
  EXPECT_EQ(trace.Count(TraceEventKind::kGatherBegin), execs);
  EXPECT_EQ(trace.Count(TraceEventKind::kGatherEnd), execs);
  EXPECT_GT(trace.Count(TraceEventKind::kStreamRefill), 0);
  // The refill events' task counts sum to the number of executed tasks.
  int64_t refilled = 0;
  for (const TraceEvent& e : trace.SortedEvents()) {
    if (e.kind == TraceEventKind::kStreamRefill) {
      refilled += e.value;
    }
  }
  EXPECT_EQ(refilled, execs);
  // Idle gaps were recorded (workers waited for work at least at startup),
  // and they agree with the aggregate metric.
  EXPECT_GT(trace.Count(TraceEventKind::kWorkerIdle), 0);
  EXPECT_GT(server.TotalWorkerIdleMicros(), 0.0);
}

TEST(TraceIntegrationTest, SimEngineTracesEveryRequest) {
  TinyLstmFixture fix;
  const CostModel cost = UnitCostModel(fix.registry);
  SimEngineOptions options;
  options.num_workers = 2;
  options.enable_tracing = true;
  SimEngine engine(&fix.registry, &cost, options);
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    engine.SubmitAt(i * 0.5, fix.model.Unfold(3 + i % 3));
  }
  engine.Run();
  ASSERT_EQ(engine.metrics().NumCompleted(), static_cast<size_t>(kRequests));

  const TraceRecorder& trace = engine.trace();
  EXPECT_EQ(trace.Count(TraceEventKind::kRequestArrival), kRequests);
  EXPECT_EQ(trace.Count(TraceEventKind::kRequestComplete), kRequests);
  EXPECT_EQ(trace.Count(TraceEventKind::kExecBegin),
            trace.Count(TraceEventKind::kExecEnd));
  EXPECT_GT(trace.Count(TraceEventKind::kSubgraphEnqueue), 0);
  // Every scheduled task was recorded at formation time.
  EXPECT_EQ(trace.Count(TraceEventKind::kTaskFormed),
            static_cast<int64_t>(engine.scheduler().TotalTasksFormed()));

  // Per-request lifecycle: arrival before completion, exec spans between.
  std::set<uint64_t> arrived, completed;
  for (const TraceEvent& e : trace.SortedEvents()) {
    if (e.kind == TraceEventKind::kRequestArrival) {
      arrived.insert(e.id);
    } else if (e.kind == TraceEventKind::kRequestComplete) {
      EXPECT_TRUE(arrived.count(e.id)) << "completion before arrival for " << e.id;
      EXPECT_GE(e.aux_micros, 0.0) << "completed request never executed";
      completed.insert(e.id);
    }
  }
  EXPECT_EQ(completed.size(), static_cast<size_t>(kRequests));

  // The trace-derived breakdown agrees with MetricsCollector exactly: both
  // observe the same arrival / first-exec / completion instants.
  const TraceStageBreakdown breakdown = BreakdownFromTrace(trace);
  ASSERT_EQ(breakdown.total.Count(), engine.metrics().Latencies().Count());
  EXPECT_DOUBLE_EQ(breakdown.total.Mean(), engine.metrics().Latencies().Mean());
  EXPECT_DOUBLE_EQ(breakdown.queueing.Mean(), engine.metrics().QueueingTimes().Mean());

  // And the export is valid JSON with a span per executed task.
  const Json doc = ChromeTraceJson(engine.trace());
  const Json parsed = Json::Parse(doc.Dump());
  int spans = 0;
  const Json& events = parsed.Get("traceEvents");
  for (size_t i = 0; i < events.Size(); ++i) {
    if (events.At(i).Get("ph").AsString() == "X") {
      ++spans;
    }
  }
  EXPECT_EQ(spans, static_cast<int>(engine.scheduler().TotalTasksFormed()));
}

}  // namespace
}  // namespace batchmaker
