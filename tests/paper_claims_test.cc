// Regression tests that lock in the paper's directional claims as
// reproduced by this codebase (EXPERIMENTS.md). These run miniature
// versions of the figure benches — short horizons, few rates — and assert
// orderings and rough factors, not absolute values, so the reproduction
// cannot silently drift.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/baselines/graph_merge_system.h"
#include "src/baselines/ideal_system.h"
#include "src/baselines/padding_system.h"
#include "src/sim/batchmaker_system.h"
#include "src/sim/loadgen.h"
#include "tests/test_models.h"

namespace batchmaker {
namespace {

LoadGenOptions QuickOptions(uint64_t seed) {
  LoadGenOptions options;
  options.horizon_seconds = 1.5;
  options.warmup_fraction = 0.4;
  options.seed = seed;
  return options;
}

// ---------- Figure 5's qualitative content ----------

TEST(PaperClaimsTest, Fig5_CellularBeatsGraphBatchingOnTheWorkedExample) {
  TinyLstmFixture fix;
  fix.registry.SetMaxBatch(fix.model.cell_type(), 4);
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), UnitCostCurve());
  SimEngineOptions options;
  options.scheduler.max_tasks_to_submit = 1;
  SimEngine cellular(&fix.registry, &cost, options);

  PaddingSystemOptions pad_options;
  pad_options.bucket_width = 7;
  pad_options.max_len = 7;
  pad_options.max_batch = 4;
  pad_options.per_step_overhead_micros = 0.0;
  pad_options.step_curve = UnitCostCurve();
  PaddingSystem graph_batching(pad_options);

  const int lengths[8] = {2, 3, 3, 5, 5, 7, 3, 1};
  const double arrivals[8] = {0, 0, 0, 0, 1.5, 2.5, 2.5, 4.5};
  for (int i = 0; i < 8; ++i) {
    cellular.SubmitAt(arrivals[i], fix.model.Unfold(lengths[i]));
    graph_batching.SubmitAt(arrivals[i], WorkItem::Chain(lengths[i]));
  }
  cellular.Run();
  graph_batching.Run(std::numeric_limits<double>::infinity());

  // Last completion: t=10 cellular vs t=12 graph batching (paper Fig. 5).
  double cellular_last = 0.0;
  double graph_last = 0.0;
  for (const auto& r : cellular.metrics().records()) {
    cellular_last = std::max(cellular_last, r.completion_micros);
  }
  for (const auto& r : graph_batching.metrics().records()) {
    graph_last = std::max(graph_last, r.completion_micros);
  }
  EXPECT_DOUBLE_EQ(graph_last, 12.0);
  EXPECT_LE(cellular_last, 10.0);
  // Every request's latency under cellular batching <= graph batching.
  std::map<RequestId, double> cell_latency;
  for (const auto& r : cellular.metrics().records()) {
    cell_latency[r.id] = r.LatencyMicros();
  }
  for (const auto& r : graph_batching.metrics().records()) {
    EXPECT_LE(cell_latency[r.id], r.LatencyMicros() + 1e-9) << "request " << r.id;
  }
}

// ---------- Figure 7 / §7.2 ----------

class LstmClaimFixture {
 public:
  LstmClaimFixture() {
    fix_.registry.SetMaxBatch(fix_.model.cell_type(), 512);
    cost_.SetCurve(fix_.model.cell_type(), GpuLstmCurve());
    cost_.SetPerTaskOverheadMicros(kBatchMakerTaskOverheadMicros);
    cost_.SetPerItemOverheadMicros(kBatchMakerPerItemOverheadMicros);
    Rng data_rng(42);
    const WmtLengthSampler sampler;
    dataset_ = SampleChainDataset(5000, sampler, &data_rng);
  }

  std::unique_ptr<ServingSystem> BatchMaker() {
    return std::make_unique<BatchMakerSystem>(
        &fix_.registry, &cost_,
        [this](const WorkItem& item) { return fix_.model.Unfold(item.length); });
  }
  static std::unique_ptr<ServingSystem> Padding() {
    return std::make_unique<PaddingSystem>(PaddingSystemOptions{});
  }
  const std::vector<WorkItem>& dataset() const { return dataset_; }

 private:
  TinyLstmFixture fix_;
  CostModel cost_;
  std::vector<WorkItem> dataset_;
};

TEST(PaperClaimsTest, Fig7_BatchMakerLatencyFlatAndLow) {
  LstmClaimFixture fixture;
  // §7.2: "The 90p-latency of BatchMaker stays unchanged (12ms) when the
  // throughput is less than 8K req/sec". Ours sits at ~10ms and stays flat.
  double p90_at_1k = 0.0;
  double p90_at_8k = 0.0;
  {
    auto system = fixture.BatchMaker();
    p90_at_1k = RunOpenLoop(system.get(), fixture.dataset(), 1000.0, QuickOptions(1)).p90_ms;
  }
  {
    auto system = fixture.BatchMaker();
    p90_at_8k = RunOpenLoop(system.get(), fixture.dataset(), 8000.0, QuickOptions(1)).p90_ms;
  }
  EXPECT_LT(p90_at_1k, 15.0);
  EXPECT_LT(p90_at_8k, 1.5 * p90_at_1k);  // flat-ish across 8x the load
}

TEST(PaperClaimsTest, Fig7_QueueingTimeArithmetic) {
  // §7.3: with MaxTasksToSubmit=5 and ~250us per step, 99p queueing should
  // be ~1.3ms at moderate load.
  LstmClaimFixture fixture;
  auto system = fixture.BatchMaker();
  const LoadPoint point =
      RunOpenLoop(system.get(), fixture.dataset(), 5000.0, QuickOptions(2));
  EXPECT_GT(point.queue_p99_ms, 0.5);
  EXPECT_LT(point.queue_p99_ms, 2.5);
}

TEST(PaperClaimsTest, Fig7_PaddingLatencyFarHigher) {
  LstmClaimFixture fixture;
  auto bm = fixture.BatchMaker();
  auto pad = LstmClaimFixture::Padding();
  const LoadPoint bm_point =
      RunOpenLoop(bm.get(), fixture.dataset(), 4000.0, QuickOptions(3));
  const LoadPoint pad_point =
      RunOpenLoop(pad.get(), fixture.dataset(), 4000.0, QuickOptions(3));
  // Paper: 37.5-90.5% latency reduction. Ours sits deep in that band.
  EXPECT_LT(bm_point.p90_ms, 0.6 * pad_point.p90_ms);
}

// ---------- Figure 11 / §7.3: the fixed-length crossover ----------

TEST(PaperClaimsTest, Fig11_PaddingWinsOnlyOnFixedLengthInputs) {
  // Fixed-length inputs: padding sustains a rate BatchMaker cannot
  // (baselines ~27.1k vs BatchMaker ~87% of that in the paper).
  TinyLstmFixture fix;
  fix.registry.SetMaxBatch(fix.model.cell_type(), 512);
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), GpuLstmCurve());
  cost.SetPerTaskOverheadMicros(kBatchMakerTaskOverheadMicros);
  cost.SetPerItemOverheadMicros(kBatchMakerPerItemOverheadMicros);
  Rng data_rng(42);
  const WmtLengthSampler fixed_sampler(330, /*fixed_len=*/24);
  const auto fixed_dataset = SampleChainDataset(500, fixed_sampler, &data_rng);

  const double probe_rate = 23000.0;  // between the two systems' peaks
  BatchMakerSystem bm(&fix.registry, &cost, [&fix](const WorkItem& item) {
    return fix.model.Unfold(item.length);
  });
  PaddingSystem pad(PaddingSystemOptions{});
  const LoadPoint bm_point = RunOpenLoop(&bm, fixed_dataset, probe_rate, QuickOptions(4));
  const LoadPoint pad_point = RunOpenLoop(&pad, fixed_dataset, probe_rate, QuickOptions(4));
  EXPECT_TRUE(bm_point.saturated);
  EXPECT_FALSE(pad_point.saturated);
}

// ---------- Figure 14 / §7.5: TreeLSTM system ordering ----------

TEST(PaperClaimsTest, Fig14_TreeLstmOrderingBatchMakerDyNetFold) {
  TinyTreeLstmFixture fix;
  fix.registry.SetMaxBatch(fix.model.leaf_type(), 64);
  fix.registry.SetMaxBatch(fix.model.internal_type(), 64);
  CostModel cost;
  cost.SetCurve(fix.model.leaf_type(), GpuTreeCellCurve());
  cost.SetCurve(fix.model.internal_type(), GpuTreeCellCurve());
  cost.SetPerTaskOverheadMicros(kBatchMakerTaskOverheadMicros);
  cost.SetPerItemOverheadMicros(kBatchMakerPerItemOverheadMicros);
  Rng data_rng(42);
  const auto dataset = SampleTreeDataset(2000, 32, &data_rng);

  // Probe at a rate between Fold's peak (~1.3k) and DyNet's (~2.7k): Fold
  // must saturate, DyNet and BatchMaker must not; at a higher rate between
  // DyNet's and BatchMaker's peaks, only BatchMaker survives.
  auto probe = [&](ServingSystem* system, double rate) {
    return RunOpenLoop(system, dataset, rate, QuickOptions(5)).saturated;
  };
  {
    BatchMakerSystem bm(&fix.registry, &cost, [&fix](const WorkItem& item) {
      return fix.model.Unfold(item.tree);
    });
    GraphMergeSystem dynet(GraphMergeOptions::DyNet(), "DyNet");
    GraphMergeSystem fold(GraphMergeOptions::Fold(), "Fold");
    EXPECT_FALSE(probe(&bm, 2000.0));
    EXPECT_FALSE(probe(&dynet, 2000.0));
    EXPECT_TRUE(probe(&fold, 2000.0));
  }
  {
    BatchMakerSystem bm(&fix.registry, &cost, [&fix](const WorkItem& item) {
      return fix.model.Unfold(item.tree);
    });
    GraphMergeSystem dynet(GraphMergeOptions::DyNet(), "DyNet");
    EXPECT_FALSE(probe(&bm, 4000.0));
    EXPECT_TRUE(probe(&dynet, 4000.0));
  }
}

// ---------- Figure 15 / §7.5: the ideal baseline's latency inversion ----------

TEST(PaperClaimsTest, Fig15_IdealHasBetterThroughputButWorseLatency) {
  TinyTreeLstmFixture fix;
  fix.registry.SetMaxBatch(fix.model.leaf_type(), 64);
  fix.registry.SetMaxBatch(fix.model.internal_type(), 64);
  CostModel cost;
  cost.SetCurve(fix.model.leaf_type(), GpuTreeCellCurve());
  cost.SetCurve(fix.model.internal_type(), GpuTreeCellCurve());
  cost.SetPerTaskOverheadMicros(kBatchMakerTaskOverheadMicros);
  cost.SetPerItemOverheadMicros(kBatchMakerPerItemOverheadMicros);
  const auto dataset = FixedTreeDataset(16, 16);

  BatchMakerSystem bm(&fix.registry, &cost, [&fix](const WorkItem& item) {
    return fix.model.Unfold(item.tree);
  });
  IdealFixedGraphSystem ideal(IdealSystemOptions{});
  const LoadPoint bm_point = RunOpenLoop(&bm, dataset, 1000.0, QuickOptions(6));
  const LoadPoint ideal_point = RunOpenLoop(&ideal, dataset, 1000.0, QuickOptions(6));
  // The inversion: the throughput-optimal hardcoded graph is slower per
  // request (31 sequential kernels, whole batch completes together).
  EXPECT_LT(bm_point.p90_ms, ideal_point.p90_ms);
}

// ---------- §9: the fixed-input hypothesis ----------

TEST(PaperClaimsTest, Sec9_NoCellularAdvantageForSingleCellRequests) {
  // Requests of length 1 = fixed computation. BatchMaker's peak must not
  // exceed plain batching's (it pays scheduling overhead for no join/leave
  // benefit).
  TinyLstmFixture fix;
  fix.registry.SetMaxBatch(fix.model.cell_type(), 512);
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), GpuLstmCurve());
  cost.SetPerTaskOverheadMicros(kBatchMakerTaskOverheadMicros);
  cost.SetPerItemOverheadMicros(kBatchMakerPerItemOverheadMicros);
  const std::vector<WorkItem> dataset = {WorkItem::Chain(1)};

  const double probe_rate = 560000.0;  // above BM's single-cell peak
  BatchMakerSystem bm(&fix.registry, &cost, [&fix](const WorkItem& item) {
    return fix.model.Unfold(item.length);
  });
  PaddingSystemOptions pad_options;
  pad_options.bucket_width = 1;
  pad_options.max_len = 1;
  pad_options.step_curve = GpuLstmCurve();
  PaddingSystem pad(pad_options);
  LoadGenOptions options = QuickOptions(7);
  options.horizon_seconds = 0.5;
  const LoadPoint bm_point = RunOpenLoop(&bm, dataset, probe_rate, options);
  const LoadPoint pad_point = RunOpenLoop(&pad, dataset, probe_rate, options);
  EXPECT_TRUE(bm_point.saturated);
  EXPECT_FALSE(pad_point.saturated);
}

}  // namespace
}  // namespace batchmaker
