// End-to-end tests for the low-precision execution path: per-CellDef
// precision selection (CellRegistry::SetPrecision), the engine-wide
// EngineOptions::precision knob, and the accuracy/determinism contract of
// bf16/int8 inference against the fp32 reference (DESIGN.md "Low-precision
// execution").

#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "src/core/server.h"
#include "src/core/sync_engine.h"
#include "src/graph/executor.h"
#include "src/nn/lstm.h"
#include "src/tensor/gemm.h"
#include "tests/test_models.h"

namespace batchmaker {
namespace {

// End-to-end logit tolerances. LSTM outputs pass through saturating gate
// nonlinearities, so elementwise error stays close to the raw GEMM error;
// bounds carry headroom over measured values (see DESIGN.md accuracy
// table).
constexpr float kBf16Tol = 2e-2f;
constexpr float kInt8Tol = 6e-2f;

// A mid-sized LSTM so quantization error is exercised across a real
// reduction dimension (input+hidden = 48, 4*hidden = 128).
constexpr int64_t kInputDim = 16;
constexpr int64_t kHidden = 32;

struct LstmPair {
  // Same Rng seed => bitwise-identical weights in both registries.
  LstmPair()
      : ref_rng(77),
        low_rng(77),
        ref_model(&ref_registry, LstmSpec{kInputDim, kHidden}, &ref_rng),
        low_model(&low_registry, LstmSpec{kInputDim, kHidden}, &low_rng) {}

  CellRegistry ref_registry;
  CellRegistry low_registry;
  Rng ref_rng;
  Rng low_rng;
  LstmModel ref_model;
  LstmModel low_model;
};

std::pair<Tensor, Tensor> RunChain(const CellExecutor& exec,
                                   const std::vector<Tensor>& xs) {
  Tensor h = Tensor::Zeros(Shape{1, kHidden});
  Tensor c = Tensor::Zeros(Shape{1, kHidden});
  for (const Tensor& x : xs) {
    auto out = exec.Execute({&x, &h, &c});
    h = std::move(out[0]);
    c = std::move(out[1]);
  }
  return {h, c};
}

std::vector<Tensor> RandomInputs(int steps, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> xs;
  for (int t = 0; t < steps; ++t) {
    xs.push_back(Tensor::RandomUniform(Shape{1, kInputDim}, 1.0f, &rng));
  }
  return xs;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.NumElements() == b.NumElements() &&
         std::memcmp(a.f32(), b.f32(),
                     static_cast<size_t>(a.NumElements()) * sizeof(float)) == 0;
}

TEST(PrecisionTest, SetPrecisionRebuildsExecutorAtRequestedPrecision) {
  LstmPair pair;
  const CellTypeId type = pair.low_model.cell_type();
  EXPECT_EQ(pair.low_registry.executor(type).precision(), Precision::kF32);
  pair.low_registry.SetPrecision(type, Precision::kBf16);
  EXPECT_EQ(pair.low_registry.executor(type).precision(), Precision::kBf16);
  pair.low_registry.SetPrecision(type, Precision::kInt8);
  EXPECT_EQ(pair.low_registry.executor(type).precision(), Precision::kInt8);
}

TEST(PrecisionTest, Bf16ChainTracksFp32Reference) {
  LstmPair pair;
  const auto xs = RandomInputs(8, 501);
  const auto [ref_h, ref_c] =
      RunChain(pair.ref_registry.executor(pair.ref_model.cell_type()), xs);
  pair.low_registry.SetPrecision(pair.low_model.cell_type(), Precision::kBf16);
  const auto [h, c] =
      RunChain(pair.low_registry.executor(pair.low_model.cell_type()), xs);
  EXPECT_TRUE(h.AllClose(ref_h, kBf16Tol));
  EXPECT_TRUE(c.AllClose(ref_c, kBf16Tol));
  // And bf16 differs from fp32 *somewhere*: the low-precision path really
  // ran (a silent fall-through to fp32 would pass any tolerance).
  EXPECT_FALSE(BitwiseEqual(h, ref_h));
}

TEST(PrecisionTest, Int8ChainTracksFp32Reference) {
  LstmPair pair;
  const auto xs = RandomInputs(8, 502);
  const auto [ref_h, ref_c] =
      RunChain(pair.ref_registry.executor(pair.ref_model.cell_type()), xs);
  pair.low_registry.SetPrecision(pair.low_model.cell_type(), Precision::kInt8);
  const auto [h, c] =
      RunChain(pair.low_registry.executor(pair.low_model.cell_type()), xs);
  EXPECT_TRUE(h.AllClose(ref_h, kInt8Tol));
  EXPECT_TRUE(c.AllClose(ref_c, kInt8Tol));
  EXPECT_FALSE(BitwiseEqual(h, ref_h));
}

TEST(PrecisionTest, LowPrecisionChainsAreBitwiseRepeatable) {
  for (Precision p : {Precision::kBf16, Precision::kInt8}) {
    SCOPED_TRACE(PrecisionName(p));
    LstmPair pair;
    pair.low_registry.SetPrecision(pair.low_model.cell_type(), p);
    const auto xs = RandomInputs(6, 503);
    const CellExecutor& exec = pair.low_registry.executor(pair.low_model.cell_type());
    const auto [h1, c1] = RunChain(exec, xs);
    const auto [h2, c2] = RunChain(exec, xs);
    EXPECT_TRUE(BitwiseEqual(h1, h2));
    EXPECT_TRUE(BitwiseEqual(c1, c2));
  }
}

TEST(PrecisionTest, SyncEnginePrecisionKnobTracksReference) {
  LstmPair pair;
  const int kLen = 6;
  const auto xs = RandomInputs(kLen, 504);
  const auto [ref_h, ref_c] =
      RunChain(pair.ref_registry.executor(pair.ref_model.cell_type()), xs);

  SyncEngine engine(&pair.low_registry);
  engine.set_precision(Precision::kInt8);
  EXPECT_EQ(engine.precision(), Precision::kInt8);
  std::vector<Tensor> ext = xs;
  ext.push_back(ExternalZeroVecTensor(kHidden));
  ext.push_back(ExternalZeroVecTensor(kHidden));
  const RequestId id =
      engine.Submit(pair.low_model.Unfold(kLen), std::move(ext),
                    {ValueRef::Output(kLen - 1, 0), ValueRef::Output(kLen - 1, 1)});
  engine.RunToCompletion();
  const auto outputs = engine.TakeResponse(id).outputs;
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_TRUE(outputs[0].AllClose(ref_h, kInt8Tol));
  EXPECT_TRUE(outputs[1].AllClose(ref_c, kInt8Tol));
}

TEST(PrecisionTest, ServerPrecisionOptionTracksReference) {
  LstmPair pair;
  const int kLen = 5;
  const auto xs = RandomInputs(kLen, 505);
  const auto [ref_h, ref_c] =
      RunChain(pair.ref_registry.executor(pair.ref_model.cell_type()), xs);

  ServerOptions options;
  options.precision = Precision::kInt8;
  Server server(&pair.low_registry, options);
  server.Start();
  std::vector<Tensor> ext = xs;
  ext.push_back(ExternalZeroVecTensor(kHidden));
  ext.push_back(ExternalZeroVecTensor(kHidden));
  const Response res =
      server.SubmitAndWait(pair.low_model.Unfold(kLen), std::move(ext),
                           {ValueRef::Output(kLen - 1, 0)});
  server.Shutdown();
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_TRUE(res.outputs[0].AllClose(ref_h, kInt8Tol));
}

// precision=fp32 (the default) must not change anything: a registry whose
// executors were never touched and an engine with the default knob produce
// bitwise the same outputs as the plain executor path.
TEST(PrecisionTest, DefaultFp32IsBitwiseUnchanged) {
  LstmPair pair;
  const int kLen = 4;
  const auto xs = RandomInputs(kLen, 506);
  const auto [ref_h, ref_c] =
      RunChain(pair.ref_registry.executor(pair.ref_model.cell_type()), xs);

  SyncEngine engine(&pair.low_registry);  // default precision
  std::vector<Tensor> ext = xs;
  ext.push_back(ExternalZeroVecTensor(kHidden));
  ext.push_back(ExternalZeroVecTensor(kHidden));
  const RequestId id = engine.Submit(pair.low_model.Unfold(kLen), std::move(ext),
                                     {ValueRef::Output(kLen - 1, 0)});
  engine.RunToCompletion();
  const auto outputs = engine.TakeResponse(id).outputs;
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_TRUE(BitwiseEqual(outputs[0], ref_h));
}

}  // namespace
}  // namespace batchmaker
