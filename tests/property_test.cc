// Property-based tests: randomized workloads driven through the full
// scheduling machinery, checking system invariants rather than specific
// outcomes. Parameterized over seeds and configurations (TEST_P).
//
// Invariants checked:
//   * liveness: every admitted request completes;
//   * conservation: executed cell count == unfolded cell count;
//   * typing: every task batches exactly one cell type;
//   * batching bound: no task exceeds its type's max batch;
//   * dependency order: a node never executes before its producers, with
//     cross-subgraph producers fully *completed* first;
//   * semantic transparency: batched execution equals sequential execution.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "src/core/sim_engine.h"
#include "src/core/sync_engine.h"
#include "src/graph/executor.h"
#include "src/graph/serialize.h"
#include "src/util/json.h"
#include "src/workload/datasets.h"
#include "tests/test_models.h"

namespace batchmaker {
namespace {

// ---------- Scheduler invariants under random mixed load (sim) ----------

struct SimPropertyParams {
  uint64_t seed;
  int max_batch;
  int max_tasks_to_submit;
  int num_workers;
};

class SimInvariantTest : public ::testing::TestWithParam<SimPropertyParams> {};

TEST_P(SimInvariantTest, RandomTreeWorkloadSatisfiesInvariants) {
  const SimPropertyParams params = GetParam();
  TinyTreeLstmFixture fix;
  fix.registry.SetMaxBatch(fix.model.leaf_type(), params.max_batch);
  fix.registry.SetMaxBatch(fix.model.internal_type(), params.max_batch);

  CostModel cost;
  cost.SetCurve(fix.model.leaf_type(), CostCurve({{1, 50.0}}));
  cost.SetCurve(fix.model.internal_type(), CostCurve({{1, 70.0}}));

  SimEngineOptions options;
  options.num_workers = params.num_workers;
  options.scheduler.max_tasks_to_submit = params.max_tasks_to_submit;
  SimEngine engine(&fix.registry, &cost, options);

  // Instrumentation: observe every task start/done.
  struct Observed {
    std::vector<BatchedTask> tasks;
    std::map<std::pair<RequestId, int>, int> exec_count;
  };
  // (We tap the engine's worker pool through a local copy of completions by
  // re-checking the metrics afterwards; per-task observation uses the
  // public counters.)

  Rng rng(params.seed);
  int total_cells = 0;
  int num_requests = 0;
  double t = 0.0;
  for (int i = 0; i < 40; ++i) {
    const int leaves = 1 + static_cast<int>(rng.NextBelow(24));
    const BinaryTree tree = BinaryTree::RandomParse(leaves, 32, &rng);
    total_cells += tree.NumNodes();
    engine.SubmitAt(t, fix.model.Unfold(tree));
    ++num_requests;
    t += rng.NextExponential(1.0 / 300.0);  // ~300us mean gap
  }
  engine.Run();

  // Liveness.
  EXPECT_EQ(engine.metrics().NumCompleted(), static_cast<size_t>(num_requests));
  EXPECT_EQ(engine.NumActiveRequests(), 0u);
  // Conservation across all workers.
  int64_t executed = 0;
  for (int w = 0; w < params.num_workers; ++w) {
    executed += engine.workers().ItemsExecuted(w);
  }
  EXPECT_EQ(executed, total_cells);
  // Sanity on recorded timings.
  for (const auto& r : engine.metrics().records()) {
    EXPECT_GE(r.exec_start_micros, r.arrival_micros);
    EXPECT_GE(r.completion_micros, r.exec_start_micros);
  }
}

TEST_P(SimInvariantTest, RandomChainWorkloadCompletes) {
  const SimPropertyParams params = GetParam();
  TinyLstmFixture fix;
  fix.registry.SetMaxBatch(fix.model.cell_type(), params.max_batch);
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), CostCurve({{1, 40.0}, {64, 60.0}}));

  SimEngineOptions options;
  options.num_workers = params.num_workers;
  options.scheduler.max_tasks_to_submit = params.max_tasks_to_submit;
  SimEngine engine(&fix.registry, &cost, options);

  Rng rng(params.seed ^ 0xabcdef);
  int total_cells = 0;
  double t = 0.0;
  for (int i = 0; i < 60; ++i) {
    const int len = 1 + static_cast<int>(rng.NextBelow(40));
    total_cells += len;
    engine.SubmitAt(t, fix.model.Unfold(len));
    t += rng.NextExponential(1.0 / 200.0);
  }
  engine.Run();
  EXPECT_EQ(engine.metrics().NumCompleted(), 60u);
  int64_t executed = 0;
  for (int w = 0; w < params.num_workers; ++w) {
    executed += engine.workers().ItemsExecuted(w);
  }
  EXPECT_EQ(executed, total_cells);
  // A request can never complete faster than its critical path (its length
  // times the fastest possible task duration).
  for (const auto& r : engine.metrics().records()) {
    EXPECT_GE(r.LatencyMicros() + 1e-6, r.num_nodes * 40.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SimInvariantTest,
    ::testing::Values(SimPropertyParams{1, 16, 5, 1}, SimPropertyParams{2, 16, 5, 2},
                      SimPropertyParams{3, 4, 1, 1}, SimPropertyParams{4, 4, 2, 3},
                      SimPropertyParams{5, 64, 10, 1}, SimPropertyParams{6, 1, 5, 2},
                      SimPropertyParams{7, 7, 3, 4}, SimPropertyParams{8, 128, 5, 1}),
    [](const ::testing::TestParamInfo<SimPropertyParams>& info) {
      const auto& p = info.param;
      return "seed" + std::to_string(p.seed) + "_b" + std::to_string(p.max_batch) + "_t" +
             std::to_string(p.max_tasks_to_submit) + "_w" + std::to_string(p.num_workers);
    });

// ---------- Task-level invariants observed through the scheduler ----------

struct TaskObservation {
  std::vector<BatchedTask> tasks;
};

class TaskInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TaskInvariantTest, TasksRespectTypingBatchingAndDependencies) {
  const uint64_t seed = GetParam();
  TinyTreeLstmFixture fix;
  const int max_batch = 8;
  fix.registry.SetMaxBatch(fix.model.leaf_type(), max_batch);
  fix.registry.SetMaxBatch(fix.model.internal_type(), max_batch);

  // Drive the scheduler directly so every formed task can be inspected.
  std::unique_ptr<Scheduler> scheduler;
  std::vector<RequestId> completed;
  RequestProcessor processor(
      &fix.registry, [&](Subgraph* sg) { scheduler->EnqueueSubgraph(sg); },
      [&](RequestState* state) { completed.push_back(state->id); });
  scheduler = std::make_unique<Scheduler>(&fix.registry, &processor,
                                          SchedulerOptions{.max_tasks_to_submit = 3});

  Rng rng(seed);
  std::map<RequestId, CellGraph> graphs;
  int total_cells = 0;
  for (RequestId id = 1; id <= 25; ++id) {
    const int leaves = 1 + static_cast<int>(rng.NextBelow(16));
    CellGraph graph = fix.model.Unfold(BinaryTree::RandomParse(leaves, 32, &rng));
    total_cells += graph.NumNodes();
    graphs.emplace(id, graph);
    processor.AddRequest(id, std::move(graph), 0.0);
  }

  // Execute to completion, remembering per-node completion order.
  std::set<std::pair<RequestId, int>> scheduled_nodes;
  std::set<std::pair<RequestId, int>> completed_nodes;
  int executed = 0;
  for (;;) {
    std::vector<BatchedTask> tasks = scheduler->Schedule(/*worker=*/0);
    if (tasks.empty()) {
      break;
    }
    for (const BatchedTask& task : tasks) {
      EXPECT_LE(task.BatchSize(), max_batch);
      EXPECT_GE(task.BatchSize(), 1);
      for (const TaskEntry& entry : task.entries) {
        // Typing: every node in the task has the task's cell type.
        const CellGraph& graph = graphs.at(entry.request);
        EXPECT_EQ(graph.node(entry.node).type, task.type);
        // No double scheduling.
        EXPECT_TRUE(scheduled_nodes.emplace(entry.request, entry.node).second)
            << "node scheduled twice";
        // Dependencies: node-producers must be scheduled already (same
        // worker FIFO order in this single-stream harness means executed).
        for (const ValueRef& ref : graph.node(entry.node).inputs) {
          if (!ref.is_external()) {
            EXPECT_TRUE(scheduled_nodes.count({entry.request, ref.node}) > 0)
                << "consumed before produced";
          }
        }
      }
      executed += task.BatchSize();
      for (const TaskEntry& entry : task.entries) {
        completed_nodes.emplace(entry.request, entry.node);
      }
      scheduler->OnTaskCompleted(task);
    }
  }
  EXPECT_EQ(executed, total_cells);
  EXPECT_EQ(completed.size(), 25u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaskInvariantTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u, 99u,
                                           111u));

// ---------- Semantic transparency of batching (real compute) ----------

class BatchTransparencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchTransparencyTest, BatchedChainsEqualSequentialExecution) {
  const uint64_t seed = GetParam();
  TinyLstmFixture fix;
  Rng rng(seed);
  // Random max-batch too: scheduling decisions must never change results.
  fix.registry.SetMaxBatch(fix.model.cell_type(),
                           1 + static_cast<int>(rng.NextBelow(16)));

  SyncEngine engine(&fix.registry,
                    SchedulerOptions{.max_tasks_to_submit =
                                         1 + static_cast<int>(rng.NextBelow(8))});
  const CellExecutor& exec = fix.registry.executor(fix.model.cell_type());

  struct Submitted {
    RequestId id;
    std::vector<Tensor> xs;
    int len;
  };
  std::vector<Submitted> submitted;
  for (int i = 0; i < 12; ++i) {
    const int len = 1 + static_cast<int>(rng.NextBelow(9));
    std::vector<Tensor> xs;
    for (int t = 0; t < len; ++t) {
      xs.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &rng));
    }
    std::vector<Tensor> externals = xs;
    externals.push_back(ExternalZeroVecTensor(4));
    externals.push_back(ExternalZeroVecTensor(4));
    const RequestId id = engine.Submit(fix.model.Unfold(len), std::move(externals),
                                       {ValueRef::Output(len - 1, 0)});
    submitted.push_back(Submitted{id, std::move(xs), len});
  }
  engine.RunToCompletion();

  for (const Submitted& s : submitted) {
    Tensor h = Tensor::Zeros(Shape{1, 4});
    Tensor c = Tensor::Zeros(Shape{1, 4});
    for (const Tensor& x : s.xs) {
      auto out = exec.Execute({&x, &h, &c});
      h = std::move(out[0]);
      c = std::move(out[1]);
    }
    const auto outputs = engine.TakeResponse(s.id).outputs;
    EXPECT_TRUE(outputs[0].AllClose(h, 1e-5f)) << "request " << s.id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchTransparencyTest,
                         ::testing::Range<uint64_t>(100u, 110u));

// ---------- JSON parser robustness ----------

class JsonFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonFuzzTest, MutatedCellJsonNeverCrashesTryParse) {
  Rng rng(GetParam());
  auto def = BuildLstmCell(LstmSpec{.input_dim = 2, .hidden = 2}, &rng, "fuzz");
  std::string text = CellDefToJsonText(*def, /*pretty=*/false);
  // Apply random byte mutations; TryParse must return cleanly either way.
  for (int round = 0; round < 200; ++round) {
    std::string mutated = text;
    const int edits = 1 + static_cast<int>(rng.NextBelow(5));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = static_cast<size_t>(rng.NextBelow(mutated.size()));
      switch (rng.NextBelow(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.NextBelow(256));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>('!' + rng.NextBelow(90)));
          break;
      }
      if (mutated.empty()) {
        break;
      }
    }
    Json out;
    std::string error;
    (void)Json::TryParse(mutated, &out, &error);  // must not crash or hang
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzzTest, ::testing::Values(1u, 2u, 3u, 4u));

// ---------- Preset cost-curve properties ----------

class CurvePropertyTest
    : public ::testing::TestWithParam<std::tuple<const char*, CostCurve>> {};

TEST_P(CurvePropertyTest, MonotoneNondecreasingTime) {
  const CostCurve& curve = std::get<1>(GetParam());
  double prev = 0.0;
  for (int b = 1; b <= 8192; b = b * 3 / 2 + 1) {
    const double t = curve.Micros(b);
    EXPECT_GE(t, prev * 0.999) << "time decreased at batch " << b;
    prev = t;
  }
}

TEST_P(CurvePropertyTest, ThroughputNeverDecreasesMuchThenCollapses) {
  // Sanity: per-item cost (micros/batch) is non-increasing up to the
  // autotuned optimum.
  const CostCurve& curve = std::get<1>(GetParam());
  const int best = AutotuneMaxBatch(curve, 4096);
  double prev_per_item = 1e18;
  for (int b = 1; b <= best; b *= 2) {
    const double per_item = curve.Micros(b) / b;
    EXPECT_LE(per_item, prev_per_item * 1.001) << "batch " << b;
    prev_per_item = per_item;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Presets, CurvePropertyTest,
    ::testing::Values(std::make_tuple("gpu_lstm", GpuLstmCurve()),
                      std::make_tuple("gpu_decoder", GpuDecoderCurve()),
                      std::make_tuple("gpu_tree", GpuTreeCellCurve()),
                      std::make_tuple("gpu_tree_old", GpuTreeCellOldCurve()),
                      std::make_tuple("cpu_lstm", CpuLstmCurve())),
    [](const ::testing::TestParamInfo<std::tuple<const char*, CostCurve>>& info) {
      return std::get<0>(info.param);
    });

}  // namespace
}  // namespace batchmaker
