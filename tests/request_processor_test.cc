// Tests for RequestProcessor: subgraph partitioning (paper §4.3/§4.4) and
// dependency propagation through scheduled/completed transitions.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/request_processor.h"
#include "tests/test_models.h"

namespace batchmaker {
namespace {

class ProcessorHarness {
 public:
  explicit ProcessorHarness(const CellRegistry* registry)
      : processor_(
            registry, [this](Subgraph* sg) { ready_subgraphs_.push_back(sg); },
            [this](RequestState* state) { completed_.push_back(state->id); }) {}

  RequestProcessor& processor() { return processor_; }
  std::vector<Subgraph*>& ready_subgraphs() { return ready_subgraphs_; }
  const std::vector<RequestId>& completed() const { return completed_; }

  // Simulates executing one task containing all currently-ready nodes of
  // `sg`: marks them scheduled then completed.
  BatchedTask ScheduleAllReady(Subgraph* sg) {
    BatchedTask task;
    task.id = next_task_id_++;
    task.type = sg->type;
    std::vector<int> nodes = sg->ready;
    for (int n : nodes) {
      task.entries.push_back(TaskEntry{sg->owner->id, n});
    }
    processor_.MarkScheduled(sg, nodes);
    return task;
  }

 private:
  RequestProcessor processor_;
  std::vector<Subgraph*> ready_subgraphs_;
  std::vector<RequestId> completed_;
  uint64_t next_task_id_ = 0;
};

// ---------- Chain (LSTM) partitioning ----------

TEST(RequestProcessorTest, ChainFormsOneSubgraph) {
  TinyLstmFixture fix;
  ProcessorHarness h(&fix.registry);
  RequestState* state = h.processor().AddRequest(1, fix.model.Unfold(5), 0.0);
  ASSERT_EQ(state->subgraphs.size(), 1u);
  EXPECT_EQ(h.ready_subgraphs().size(), 1u);
  Subgraph* sg = h.ready_subgraphs()[0];
  EXPECT_EQ(sg->nodes.size(), 5u);
  // Only the first step is ready; the rest wait on internal deps.
  EXPECT_EQ(sg->ready, std::vector<int>{0});
  EXPECT_EQ(sg->unscheduled, 5);
}

TEST(RequestProcessorTest, ChainUnlocksStepByStep) {
  TinyLstmFixture fix;
  ProcessorHarness h(&fix.registry);
  h.processor().AddRequest(1, fix.model.Unfold(3), 0.0);
  Subgraph* sg = h.ready_subgraphs()[0];

  const BatchedTask t0 = h.ScheduleAllReady(sg);
  EXPECT_EQ(t0.entries.size(), 1u);
  EXPECT_EQ(sg->ready, std::vector<int>{1});  // scheduling unlocks successor

  const BatchedTask t1 = h.ScheduleAllReady(sg);
  EXPECT_EQ(sg->ready, std::vector<int>{2});
  const BatchedTask t2 = h.ScheduleAllReady(sg);
  EXPECT_TRUE(sg->ready.empty());
  EXPECT_EQ(sg->unscheduled, 0);

  EXPECT_TRUE(h.completed().empty());
  h.processor().MarkCompleted(t0);
  h.processor().MarkCompleted(t1);
  EXPECT_TRUE(h.completed().empty());
  h.processor().MarkCompleted(t2);
  EXPECT_EQ(h.completed(), std::vector<RequestId>{1});
  EXPECT_EQ(h.processor().NumActiveRequests(), 0u);
}

// ---------- Seq2Seq partitioning ----------

TEST(RequestProcessorTest, Seq2SeqFormsEncoderAndDecoderSubgraphs) {
  TinySeq2SeqFixture fix;
  ProcessorHarness h(&fix.registry);
  RequestState* state = h.processor().AddRequest(1, fix.model.Unfold(4, 3), 0.0);
  ASSERT_EQ(state->subgraphs.size(), 2u);
  // Only the encoder subgraph is released at admit time.
  ASSERT_EQ(h.ready_subgraphs().size(), 1u);
  EXPECT_EQ(h.ready_subgraphs()[0]->type, fix.model.encoder_type());
  // The decoder subgraph waits on the last encoder node (h and c): one
  // distinct external predecessor.
  Subgraph* dec = state->subgraphs[1].get();
  EXPECT_EQ(dec->type, fix.model.decoder_type());
  EXPECT_FALSE(dec->released);
  EXPECT_EQ(dec->unmet_external, 1);
}

TEST(RequestProcessorTest, Seq2SeqDecoderReleasesAfterEncoderCompletes) {
  TinySeq2SeqFixture fix;
  ProcessorHarness h(&fix.registry);
  h.processor().AddRequest(1, fix.model.Unfold(2, 2), 0.0);
  Subgraph* enc = h.ready_subgraphs()[0];

  std::vector<BatchedTask> tasks;
  tasks.push_back(h.ScheduleAllReady(enc));
  tasks.push_back(h.ScheduleAllReady(enc));
  EXPECT_EQ(enc->unscheduled, 0);
  EXPECT_EQ(h.ready_subgraphs().size(), 1u);  // decoder not yet released

  h.processor().MarkCompleted(tasks[0]);
  EXPECT_EQ(h.ready_subgraphs().size(), 1u);
  h.processor().MarkCompleted(tasks[1]);  // final encoder completes
  ASSERT_EQ(h.ready_subgraphs().size(), 2u);
  EXPECT_EQ(h.ready_subgraphs()[1]->type, fix.model.decoder_type());
}

// ---------- TreeLSTM partitioning (paper §4.4's worked example) ----------

TEST(RequestProcessorTest, TreeLstmPartitionMatchesPaperExample) {
  TinyTreeLstmFixture fix;
  ProcessorHarness h(&fix.registry);
  // "Suppose request x is a complete binary tree with 16 leaf nodes. Then
  // its cell graph will be partitioned into 17 subgraphs: one subgraph
  // contains 31 internal tree nodes" [sic: 15 internal nodes]; "each of the
  // other 16 subgraphs contains a single leaf node."
  RequestState* state =
      h.processor().AddRequest(1, fix.model.Unfold(BinaryTree::Complete(16)), 0.0);
  ASSERT_EQ(state->subgraphs.size(), 17u);
  int leaf_subgraphs = 0;
  int internal_subgraphs = 0;
  for (const auto& sg : state->subgraphs) {
    if (sg->type == fix.model.leaf_type()) {
      ++leaf_subgraphs;
      EXPECT_EQ(sg->nodes.size(), 1u);
    } else {
      ++internal_subgraphs;
      EXPECT_EQ(sg->nodes.size(), 15u);
    }
  }
  EXPECT_EQ(leaf_subgraphs, 16);
  EXPECT_EQ(internal_subgraphs, 1);
  // All 16 leaf subgraphs are immediately ready; the internal one waits on
  // 16 external predecessors.
  EXPECT_EQ(h.ready_subgraphs().size(), 16u);
}

TEST(RequestProcessorTest, TreeLstmInternalReleasesAfterAllLeaves) {
  TinyTreeLstmFixture fix;
  ProcessorHarness h(&fix.registry);
  RequestState* state =
      h.processor().AddRequest(1, fix.model.Unfold(BinaryTree::Complete(4)), 0.0);
  ASSERT_EQ(state->subgraphs.size(), 5u);

  std::vector<BatchedTask> leaf_tasks;
  for (Subgraph* sg : h.ready_subgraphs()) {
    leaf_tasks.push_back(h.ScheduleAllReady(sg));
  }
  EXPECT_EQ(h.ready_subgraphs().size(), 4u);
  for (size_t i = 0; i < leaf_tasks.size(); ++i) {
    h.processor().MarkCompleted(leaf_tasks[i]);
    if (i + 1 < leaf_tasks.size()) {
      EXPECT_EQ(h.ready_subgraphs().size(), 4u) << "released too early";
    }
  }
  ASSERT_EQ(h.ready_subgraphs().size(), 5u);
  Subgraph* internal = h.ready_subgraphs()[4];
  EXPECT_EQ(internal->type, fix.model.internal_type());
  // Bottom level of internal nodes (2 of them) is ready.
  EXPECT_EQ(internal->ready.size(), 2u);
}

TEST(RequestProcessorTest, TreeLstmLevelsScheduleInWaves) {
  TinyTreeLstmFixture fix;
  ProcessorHarness h(&fix.registry);
  h.processor().AddRequest(1, fix.model.Unfold(BinaryTree::Complete(8)), 0.0);

  std::vector<BatchedTask> tasks;
  for (Subgraph* sg : std::vector<Subgraph*>(h.ready_subgraphs())) {
    tasks.push_back(h.ScheduleAllReady(sg));
  }
  for (const BatchedTask& t : tasks) {
    h.processor().MarkCompleted(t);
  }
  Subgraph* internal = h.ready_subgraphs().back();
  // Waves: 4, then 2, then 1 ready nodes.
  EXPECT_EQ(internal->ready.size(), 4u);
  h.ScheduleAllReady(internal);
  EXPECT_EQ(internal->ready.size(), 2u);
  h.ScheduleAllReady(internal);
  EXPECT_EQ(internal->ready.size(), 1u);
  h.ScheduleAllReady(internal);
  EXPECT_TRUE(internal->ready.empty());
  EXPECT_EQ(internal->unscheduled, 0);
}

// ---------- Misc ----------

TEST(RequestProcessorTest, MultipleRequestsTrackedIndependently) {
  TinyLstmFixture fix;
  ProcessorHarness h(&fix.registry);
  h.processor().AddRequest(1, fix.model.Unfold(2), 0.0);
  h.processor().AddRequest(2, fix.model.Unfold(3), 10.0);
  EXPECT_EQ(h.processor().NumActiveRequests(), 2u);
  EXPECT_EQ(h.ready_subgraphs().size(), 2u);
  EXPECT_NE(h.ready_subgraphs()[0]->owner, h.ready_subgraphs()[1]->owner);
}

TEST(RequestProcessorTest, ArrivalTimeRecorded) {
  TinyLstmFixture fix;
  ProcessorHarness h(&fix.registry);
  RequestState* state = h.processor().AddRequest(1, fix.model.Unfold(2), 123.5);
  EXPECT_DOUBLE_EQ(state->arrival_micros, 123.5);
  EXPECT_LT(state->ExecStartMicros(), 0.0);
}

TEST(RequestProcessorDeathTest, DuplicateIdAborts) {
  TinyLstmFixture fix;
  ProcessorHarness h(&fix.registry);
  h.processor().AddRequest(1, fix.model.Unfold(2), 0.0);
  EXPECT_DEATH(h.processor().AddRequest(1, fix.model.Unfold(2), 0.0), "duplicate");
}

TEST(RequestProcessorTest, FindRequestReturnsNullForUnknown) {
  TinyLstmFixture fix;
  ProcessorHarness h(&fix.registry);
  EXPECT_EQ(h.processor().FindRequest(42), nullptr);
}

}  // namespace
}  // namespace batchmaker
