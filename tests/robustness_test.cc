// Robustness tests for the real-time Server: submission validation,
// admission control, deadline-based load shedding, deterministic fault
// injection with innocent-request recovery, cancellation under pipelined
// streams, and a concurrent stress of all of the above. The invariant under
// test throughout: every Submit gets exactly one terminal callback, and
// every kOk response is bitwise identical to the fault-free SyncEngine.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/server.h"
#include "src/core/sync_engine.h"
#include "tests/test_models.h"

namespace batchmaker {
namespace {

std::vector<Tensor> MakeChainExternals(const std::vector<Tensor>& xs, int64_t hidden) {
  std::vector<Tensor> ext = xs;
  ext.push_back(ExternalZeroVecTensor(hidden));
  ext.push_back(ExternalZeroVecTensor(hidden));
  return ext;
}

// One chain request: its inputs and the server-independent description
// needed to replay it against the SyncEngine reference.
struct ChainRequest {
  int length = 0;
  std::vector<Tensor> xs;
};

std::vector<ChainRequest> MakeChainRequests(const std::vector<int>& lengths,
                                            int64_t input_dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<ChainRequest> requests;
  for (const int len : lengths) {
    ChainRequest r;
    r.length = len;
    for (int t = 0; t < len; ++t) {
      r.xs.push_back(Tensor::RandomUniform(Shape{1, input_dim}, 1.0f, &rng));
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

// Fault-free bitwise reference: the final hidden state of each chain,
// computed by the serial SyncEngine over the same graphs and inputs.
std::vector<Tensor> ReferenceOutputs(const CellRegistry* registry, const LstmModel& model,
                                     const std::vector<ChainRequest>& requests,
                                     int64_t hidden) {
  SyncEngine engine(registry);
  std::vector<RequestId> ids;
  for (const ChainRequest& r : requests) {
    ids.push_back(engine.Submit(model.Unfold(r.length), MakeChainExternals(r.xs, hidden),
                                {ValueRef::Output(r.length - 1, 0)}));
  }
  engine.RunToCompletion();
  std::vector<Tensor> outputs;
  for (const RequestId id : ids) {
    std::vector<Tensor> out = engine.TakeResponse(id).outputs;
    outputs.push_back(std::move(out[0]));
  }
  return outputs;
}

// --- Submission validation -------------------------------------------------

TEST(RobustnessTest, InvalidSubmissionsAreRejectedNotFatal) {
  TinyLstmFixture fix;
  Server server(&fix.registry);
  server.Start();
  Rng data_rng(31);
  std::vector<Tensor> xs = {Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng)};

  size_t rejected = 0;
  const auto expect_rejected = [&](Response res) {
    EXPECT_EQ(res.status, RequestStatus::kRejected);
    EXPECT_TRUE(res.outputs.empty());
    ++rejected;
    EXPECT_EQ(server.metrics().NumRejected(), rejected);
  };

  // Empty graph.
  expect_rejected(server.SubmitAndWait(CellGraph(), MakeChainExternals(xs, 4),
                                       {ValueRef::Output(0, 0)}));
  // No externals at all for a graph that references them.
  expect_rejected(server.SubmitAndWait(fix.model.Unfold(1), {}, {ValueRef::Output(0, 0)}));
  // Too few externals: Unfold(2) references external ids the vector lacks.
  expect_rejected(server.SubmitAndWait(fix.model.Unfold(2), MakeChainExternals(xs, 4),
                                       {ValueRef::Output(1, 0)}));
  // outputs_wanted referencing a node that does not exist.
  expect_rejected(server.SubmitAndWait(fix.model.Unfold(1), MakeChainExternals(xs, 4),
                                       {ValueRef::Output(7, 0)}));
  // outputs_wanted referencing an output slot beyond the cell's arity.
  expect_rejected(server.SubmitAndWait(fix.model.Unfold(1), MakeChainExternals(xs, 4),
                                       {ValueRef::Output(0, 99)}));
  // outputs_wanted referencing an external instead of a node output.
  expect_rejected(server.SubmitAndWait(fix.model.Unfold(1), MakeChainExternals(xs, 4),
                                       {ValueRef::External(0)}));

  // The server survived all of it and still serves valid requests.
  const Response ok = server.SubmitAndWait(fix.model.Unfold(1), MakeChainExternals(xs, 4),
                                           {ValueRef::Output(0, 0)});
  server.Shutdown();
  ASSERT_TRUE(ok.ok());
  ASSERT_EQ(ok.outputs.size(), 1u);
  EXPECT_EQ(server.metrics().NumCompleted(), 1u);
  EXPECT_EQ(server.metrics().NumRejected(), rejected);
}

// --- Admission control -----------------------------------------------------

TEST(RobustnessTest, AdmissionCapRejectsWhenFull) {
  TinyLstmFixture fix;
  ServerOptions options;
  options.admission.max_queued_requests = 1;
  Server server(&fix.registry, options);
  server.Start();
  Rng data_rng(32);
  std::vector<Tensor> xs = {Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng)};

  // Request 1's callback blocks the manager until released, pinning
  // unfinished_requests_ at the cap (the count only drops after the
  // terminal callback returns).
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<int> first_status{-1};
  server.Submit(fix.model.Unfold(1), MakeChainExternals(xs, 4), {ValueRef::Output(0, 0)},
                [&, released](RequestId, RequestStatus status, std::vector<Tensor>) {
                  first_status.store(static_cast<int>(status));
                  released.wait();
                });

  // The server is at capacity: the second submission is rejected
  // synchronously, never enqueued.
  const Response second = server.SubmitAndWait(fix.model.Unfold(1),
                                               MakeChainExternals(xs, 4),
                                               {ValueRef::Output(0, 0)});
  EXPECT_EQ(second.status, RequestStatus::kRejected);
  EXPECT_EQ(server.metrics().NumRejected(), 1u);

  release.set_value();
  // Once request 1 fully retires, admission reopens. The retirement races
  // with this thread, so retry until a slot frees up.
  Response third;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    third = server.SubmitAndWait(fix.model.Unfold(1), MakeChainExternals(xs, 4),
                                 {ValueRef::Output(0, 0)});
    if (third.ok()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Shutdown();
  EXPECT_EQ(first_status.load(), static_cast<int>(RequestStatus::kOk));
  EXPECT_TRUE(third.ok());
  EXPECT_EQ(server.metrics().NumCompleted(), 2u);
}

// --- Deadline-based load shedding ------------------------------------------

TEST(RobustnessTest, ExpiredDeadlinesShedQueuedRequests) {
  // One slow worker, drain-then-refill streams: request A's chain keeps the
  // worker busy for many task-times, so requests B1..B5 — submitted with a
  // deadline far shorter than the worker's backlog — expire in the queue
  // before the scheduler can ever touch them.
  constexpr int64_t kHidden = 512;
  constexpr int kChainLen = 12;
  CellRegistry registry;
  Rng weight_rng(33);
  LstmModel model(&registry, LstmSpec{.input_dim = kHidden, .hidden = kHidden},
                  &weight_rng);
  ServerOptions options;
  options.num_workers = 1;
  options.threads_per_worker = 1;
  options.pipeline_depth = 1;
  Server server(&registry, options);
  server.Start();
  Rng data_rng(34);

  std::vector<Tensor> xs_a;
  for (int t = 0; t < kChainLen; ++t) {
    xs_a.push_back(Tensor::RandomUniform(Shape{1, kHidden}, 1.0f, &data_rng));
  }
  std::atomic<int> a_status{-1};
  server.Submit(model.Unfold(kChainLen), MakeChainExternals(xs_a, kHidden),
                {ValueRef::Output(kChainLen - 1, 0)},
                [&](RequestId, RequestStatus status, std::vector<Tensor>) {
                  a_status.store(static_cast<int>(status));
                });
  // Wait until A is on the worker: at least one of its tasks executed, so
  // several more (scheduled into the same stream) still lie ahead.
  const auto poll_start = std::chrono::steady_clock::now();
  while (server.TasksExecuted() < 1) {
    ASSERT_LT(std::chrono::steady_clock::now() - poll_start, std::chrono::seconds(10))
        << "request A never started executing";
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  // Each B would need the worker within 100us; the worker is busy with A's
  // remaining tasks for far longer than that.
  constexpr int kShedCandidates = 5;
  std::atomic<int> shed{0};
  std::atomic<int> b_callbacks{0};
  for (int i = 0; i < kShedCandidates; ++i) {
    std::vector<Tensor> xs = {Tensor::RandomUniform(Shape{1, kHidden}, 1.0f, &data_rng)};
    server.Submit(model.Unfold(1), MakeChainExternals(xs, kHidden),
                  {ValueRef::Output(0, 0)},
                  [&](RequestId, RequestStatus status, std::vector<Tensor> outputs) {
                    b_callbacks.fetch_add(1);
                    if (status == RequestStatus::kShed) {
                      EXPECT_TRUE(outputs.empty());
                      shed.fetch_add(1);
                    }
                  },
                  SubmitOptions{.deadline_micros = 100.0});
  }
  server.Shutdown();

  EXPECT_EQ(a_status.load(), static_cast<int>(RequestStatus::kOk));
  EXPECT_EQ(b_callbacks.load(), kShedCandidates);
  EXPECT_EQ(shed.load(), kShedCandidates);
  EXPECT_EQ(server.metrics().NumDropped(), static_cast<size_t>(kShedCandidates));
  EXPECT_EQ(server.metrics().NumCompleted(), 1u);
}

TEST(RobustnessTest, CompletedRequestDeadlinesArePrunedNotReFired) {
  // Regression (stale deadline-heap entries): a request that completes
  // before its deadline used to leave its heap entry behind; the manager
  // would then compute wake-ups from a dead heap top and could try to shed
  // the id again. Every completed request's entry must be lazily pruned:
  // after the fleet drains, the heap is empty and nothing was dropped.
  TinyLstmFixture fix;
  Server server(&fix.registry);
  server.Start();
  Rng data_rng(41);
  for (int i = 0; i < 16; ++i) {
    std::vector<Tensor> xs = {Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng)};
    const Response res = server.SubmitAndWait(
        fix.model.Unfold(1), MakeChainExternals(xs, 4), {ValueRef::Output(0, 0)},
        SubmitOptions{.deadline_micros = 200000.0});
    ASSERT_TRUE(res.ok()) << "request " << i;
  }
  server.Shutdown();
  EXPECT_EQ(server.metrics().NumCompleted(), 16u);
  EXPECT_EQ(server.metrics().NumDropped(), 0u);
  // The lazy prune popped every terminal entry: no stale deadline remains
  // to wake the manager.
  EXPECT_EQ(server.PendingDeadlines(), 0u);
}

TEST(RobustnessTest, QueueTimeoutAndSlaDeadlineStayDistinctTighterWins) {
  // The engine-wide queue timeout and the per-request SLA deadline are
  // separate knobs; shedding fires on whichever is tighter. Here the queue
  // timeout (100us) is far tighter than the generous SLA (10s): queued
  // requests must shed at the timeout, not coast on the big deadline. A
  // request that opts out entirely (negative deadline) must never shed,
  // even with the engine-wide timeout set.
  constexpr int64_t kHidden = 512;
  constexpr int kChainLen = 12;
  CellRegistry registry;
  Rng weight_rng(42);
  LstmModel model(&registry, LstmSpec{.input_dim = kHidden, .hidden = kHidden},
                  &weight_rng);
  ServerOptions options;
  options.num_workers = 1;
  options.threads_per_worker = 1;
  options.pipeline_depth = 1;
  options.admission.queue_timeout_micros = 100.0;
  Server server(&registry, options);
  server.Start();
  Rng data_rng(43);

  // Request A keeps the single worker busy for many task-times. It opts
  // out of shedding (negative deadline beats the engine timeout).
  std::vector<Tensor> xs_a;
  for (int t = 0; t < kChainLen; ++t) {
    xs_a.push_back(Tensor::RandomUniform(Shape{1, kHidden}, 1.0f, &data_rng));
  }
  std::atomic<int> a_status{-1};
  server.Submit(model.Unfold(kChainLen), MakeChainExternals(xs_a, kHidden),
                {ValueRef::Output(kChainLen - 1, 0)},
                [&](RequestId, RequestStatus status, std::vector<Tensor>) {
                  a_status.store(static_cast<int>(status));
                },
                SubmitOptions{.deadline_micros = -1.0});
  const auto poll_start = std::chrono::steady_clock::now();
  while (server.TasksExecuted() < 1) {
    ASSERT_LT(std::chrono::steady_clock::now() - poll_start, std::chrono::seconds(10))
        << "request A never started executing";
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  // Each B carries a 10-second SLA — but the 100us queue timeout is
  // tighter, and the worker is busy far longer than that.
  constexpr int kShedCandidates = 5;
  std::atomic<int> shed{0};
  std::atomic<int> b_callbacks{0};
  for (int i = 0; i < kShedCandidates; ++i) {
    std::vector<Tensor> xs = {Tensor::RandomUniform(Shape{1, kHidden}, 1.0f, &data_rng)};
    server.Submit(model.Unfold(1), MakeChainExternals(xs, kHidden),
                  {ValueRef::Output(0, 0)},
                  [&](RequestId, RequestStatus status, std::vector<Tensor>) {
                    b_callbacks.fetch_add(1);
                    if (status == RequestStatus::kShed) {
                      shed.fetch_add(1);
                    }
                  },
                  SubmitOptions{.deadline_micros = 10e6});
  }
  server.Shutdown();

  // A was never shed despite blowing through the queue timeout: the
  // negative deadline opted it out. Every B shed at the timeout despite
  // its 10-second SLA: tighter wins.
  EXPECT_EQ(a_status.load(), static_cast<int>(RequestStatus::kOk));
  EXPECT_EQ(b_callbacks.load(), kShedCandidates);
  EXPECT_EQ(shed.load(), kShedCandidates);
  EXPECT_EQ(server.metrics().NumDropped(), static_cast<size_t>(kShedCandidates));
  EXPECT_EQ(server.metrics().NumCompleted(), 1u);
  EXPECT_EQ(server.PendingDeadlines(), 0u);
}

// --- Fault injection -------------------------------------------------------

TEST(RobustnessTest, InjectedFaultKillsVictimOnlyInnocentsBitwiseIdentical) {
  constexpr int64_t kHidden = 4;
  const std::vector<int> lengths = {3, 5, 2, 4};
  TinyLstmFixture fix;
  const auto requests = MakeChainRequests(lengths, kHidden, /*seed=*/35);
  const auto reference = ReferenceOutputs(&fix.registry, fix.model, requests, kHidden);

  ServerOptions options;
  options.num_workers = 2;
  options.fault.fail_task_id = 0;  // the first task formed always fails
  Server server(&fix.registry, options);
  server.Start();

  std::mutex mu;
  std::map<RequestId, RequestStatus> statuses;
  std::map<RequestId, std::vector<Tensor>> outputs;
  std::vector<RequestId> ids;
  for (const ChainRequest& r : requests) {
    const RequestId id = server.Submit(
        fix.model.Unfold(r.length), MakeChainExternals(r.xs, kHidden),
        {ValueRef::Output(r.length - 1, 0)},
        [&](RequestId rid, RequestStatus status, std::vector<Tensor> out) {
          std::lock_guard<std::mutex> lock(mu);
          ASSERT_EQ(statuses.count(rid), 0u) << "second terminal callback";
          statuses[rid] = status;
          outputs[rid] = std::move(out);
        });
    ids.push_back(id);
  }
  server.Shutdown();

  ASSERT_EQ(statuses.size(), ids.size());
  EXPECT_EQ(server.TasksFailed(), 1);
  int failed = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    const RequestStatus status = statuses.at(ids[i]);
    if (status == RequestStatus::kFailed) {
      ++failed;
      EXPECT_TRUE(outputs.at(ids[i]).empty());
      continue;
    }
    // Innocent co-batched requests were re-queued and completed with
    // outputs bitwise identical to a fault-free serial run.
    ASSERT_EQ(status, RequestStatus::kOk) << "request " << i;
    ASSERT_EQ(outputs.at(ids[i]).size(), 1u);
    EXPECT_TRUE(outputs.at(ids[i])[0].ElementsEqual(reference[i])) << "request " << i;
  }
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(server.metrics().NumFailed(), 1u);
  EXPECT_EQ(server.metrics().NumCompleted(), ids.size() - 1);
}

TEST(RobustnessTest, FaultRateEveryRequestGetsExactlyOneStatus) {
  constexpr int64_t kHidden = 4;
  std::vector<int> lengths;
  for (int i = 0; i < 24; ++i) {
    lengths.push_back(1 + (i * 7) % 6);
  }
  TinyLstmFixture fix;
  const auto requests = MakeChainRequests(lengths, kHidden, /*seed=*/36);
  const auto reference = ReferenceOutputs(&fix.registry, fix.model, requests, kHidden);

  ServerOptions options;
  options.num_workers = 2;
  options.pipeline_depth = 2;
  options.fault.fail_rate = 0.2;
  options.fault.fail_task_id = 0;  // guarantee at least one fault fires
  options.fault.seed = 123;
  Server server(&fix.registry, options);
  server.Start();

  std::mutex mu;
  std::map<RequestId, int> callback_counts;
  std::map<RequestId, RequestStatus> statuses;
  std::map<RequestId, std::vector<Tensor>> outputs;
  std::vector<RequestId> ids;
  for (const ChainRequest& r : requests) {
    ids.push_back(server.Submit(
        fix.model.Unfold(r.length), MakeChainExternals(r.xs, kHidden),
        {ValueRef::Output(r.length - 1, 0)},
        [&](RequestId rid, RequestStatus status, std::vector<Tensor> out) {
          std::lock_guard<std::mutex> lock(mu);
          callback_counts[rid]++;
          statuses[rid] = status;
          outputs[rid] = std::move(out);
        }));
  }
  server.Shutdown();

  EXPECT_GE(server.TasksFailed(), 1);
  ASSERT_EQ(callback_counts.size(), ids.size());
  size_t ok = 0, failed = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(callback_counts.at(ids[i]), 1) << "request " << i;
    const RequestStatus status = statuses.at(ids[i]);
    if (status == RequestStatus::kOk) {
      ++ok;
      ASSERT_EQ(outputs.at(ids[i]).size(), 1u);
      EXPECT_TRUE(outputs.at(ids[i])[0].ElementsEqual(reference[i])) << "request " << i;
    } else {
      ASSERT_EQ(status, RequestStatus::kFailed) << "request " << i;
      ++failed;
      EXPECT_TRUE(outputs.at(ids[i]).empty());
    }
  }
  EXPECT_EQ(ok + failed, ids.size());
  EXPECT_EQ(server.metrics().NumCompleted(), ok);
  EXPECT_EQ(server.metrics().NumFailed(), failed);
}

// --- Cancellation under pipelined streams ----------------------------------

TEST(RobustnessTest, CancelUnderPipelinedStreamsSurvivorsBitwiseIdentical) {
  constexpr int64_t kHidden = 16;
  constexpr int kRequests = 8;
  std::vector<int> lengths;
  for (int i = 0; i < kRequests; ++i) {
    lengths.push_back(8 + i);
  }

  for (const int depth : {2, 4}) {
    CellRegistry registry;
    Rng weight_rng(37);
    LstmModel model(&registry, LstmSpec{.input_dim = kHidden, .hidden = kHidden},
                    &weight_rng);
    const auto requests = MakeChainRequests(lengths, kHidden, /*seed=*/38);
    const auto reference = ReferenceOutputs(&registry, model, requests, kHidden);

    ServerOptions options;
    options.num_workers = 2;
    options.pipeline_depth = depth;
    Server server(&registry, options);
    server.Start();

    std::mutex mu;
    std::map<RequestId, int> callback_counts;
    std::map<RequestId, RequestStatus> statuses;
    std::map<RequestId, std::vector<Tensor>> outputs;
    std::vector<RequestId> ids;
    for (const ChainRequest& r : requests) {
      ids.push_back(server.Submit(
          model.Unfold(r.length), MakeChainExternals(r.xs, kHidden),
          {ValueRef::Output(r.length - 1, 0)},
          [&](RequestId rid, RequestStatus status, std::vector<Tensor> out) {
            std::lock_guard<std::mutex> lock(mu);
            callback_counts[rid]++;
            statuses[rid] = status;
            outputs[rid] = std::move(out);
          }));
    }
    // Cancel every odd request while its tasks may be anywhere in the
    // pipeline: queued, staging, executing, or already done.
    for (size_t i = 1; i < ids.size(); i += 2) {
      server.Cancel(ids[i]);
    }
    server.Shutdown();  // must not hang, whatever the cancels hit

    ASSERT_EQ(callback_counts.size(), ids.size()) << "depth " << depth;
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(callback_counts.at(ids[i]), 1) << "depth " << depth << " request " << i;
      const RequestStatus status = statuses.at(ids[i]);
      if (i % 2 == 1) {
        // A cancel either lands (kCancelled) or loses the race to normal
        // completion (kOk) — never anything else, never a second callback.
        EXPECT_TRUE(status == RequestStatus::kCancelled || status == RequestStatus::kOk)
            << "depth " << depth << " request " << i;
      } else {
        ASSERT_EQ(status, RequestStatus::kOk) << "depth " << depth << " request " << i;
      }
      if (status == RequestStatus::kOk && !outputs.at(ids[i]).empty()) {
        // Survivors (and cancel-losers) are bitwise identical to the
        // serial reference: cancellation never double-scatters or corrupts
        // co-batched rows.
        EXPECT_TRUE(outputs.at(ids[i])[0].ElementsEqual(reference[i]))
            << "depth " << depth << " request " << i;
      }
    }
  }
}

// --- Concurrent stress: everything at once ---------------------------------

// Submissions (valid and invalid), per-request deadlines, fault injection,
// scattered cancels, and a racing Shutdown. The one invariant: every Submit
// observes exactly one terminal callback. Run under TSan in CI.
TEST(RobustnessTest, ConcurrentStressExactlyOneTerminalCallbackPerRequest) {
  constexpr int kSubmitters = 3;
  constexpr int kPerThread = 60;
  TinyLstmFixture fix;
  ServerOptions options;
  options.num_workers = 2;
  options.pipeline_depth = 2;
  options.fault.fail_rate = 0.05;
  options.fault.seed = 39;
  options.admission.queue_timeout_micros = 50000.0;  // 50ms: rarely fires, but armed
  Server server(&fix.registry, options);
  server.Start();

  std::mutex mu;
  std::map<RequestId, int> callback_counts;
  std::map<RequestId, RequestStatus> statuses;
  std::atomic<int> submitted{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(100 + t));
      std::vector<RequestId> my_ids;
      for (int i = 0; i < kPerThread; ++i) {
        const int len = 1 + (i % 4);
        std::vector<Tensor> externals;
        if (i % 7 == 3) {
          // Deliberately invalid: missing the zero-state externals.
          for (int s = 0; s < len; ++s) {
            externals.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &rng));
          }
        } else {
          std::vector<Tensor> xs;
          for (int s = 0; s < len; ++s) {
            xs.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &rng));
          }
          externals = MakeChainExternals(xs, 4);
        }
        submitted.fetch_add(1);
        const double deadline = (i % 5 == 4) ? 200.0 : 0.0;
        const RequestId id = server.Submit(
            fix.model.Unfold(len), std::move(externals), {ValueRef::Output(len - 1, 0)},
            [&](RequestId rid, RequestStatus status, std::vector<Tensor>) {
              std::lock_guard<std::mutex> lock(mu);
              callback_counts[rid]++;
              statuses[rid] = status;
            },
            SubmitOptions{.deadline_micros = deadline});
        my_ids.push_back(id);
        if (i % 11 == 10) {
          // Cancel a random earlier request from this thread.
          server.Cancel(my_ids[rng.NextBelow(my_ids.size())]);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  server.Shutdown();  // races the submitters: stragglers get kRejected
  for (std::thread& t : submitters) {
    t.join();
  }

  ASSERT_EQ(callback_counts.size(), static_cast<size_t>(submitted.load()));
  size_t ok = 0, shed = 0, rejected = 0, failed = 0, cancelled = 0;
  for (const auto& [id, count] : callback_counts) {
    EXPECT_EQ(count, 1) << "request " << id;
    switch (statuses.at(id)) {
      case RequestStatus::kOk: ++ok; break;
      case RequestStatus::kShed: ++shed; break;
      case RequestStatus::kRejected: ++rejected; break;
      case RequestStatus::kFailed: ++failed; break;
      case RequestStatus::kCancelled: ++cancelled; break;
    }
  }
  EXPECT_EQ(ok + shed + rejected + failed + cancelled,
            static_cast<size_t>(submitted.load()));
  EXPECT_EQ(server.metrics().NumCompleted(), ok);
  EXPECT_EQ(server.metrics().NumDropped(), shed);
  EXPECT_EQ(server.metrics().NumRejected(), rejected);
  EXPECT_EQ(server.metrics().NumFailed(), failed);
}

}  // namespace
}  // namespace batchmaker
