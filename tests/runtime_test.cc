// Tests for src/runtime: cost curves, autotuning, the event queue, and the
// simulated worker pool.

#include <gtest/gtest.h>

#include <vector>

#include "src/device/sim_backend.h"
#include "src/runtime/cost_model.h"
#include "src/runtime/event_queue.h"
#include "src/runtime/sim_worker.h"

namespace batchmaker {
namespace {

// ---------- CostCurve ----------

TEST(CostCurveTest, HitsAnchorsExactly) {
  const CostCurve curve({{1, 100.0}, {64, 200.0}, {512, 800.0}});
  EXPECT_NEAR(curve.Micros(1), 100.0, 1e-9);
  EXPECT_NEAR(curve.Micros(64), 200.0, 1e-9);
  EXPECT_NEAR(curve.Micros(512), 800.0, 1e-9);
}

TEST(CostCurveTest, InterpolatesMonotonically) {
  const CostCurve curve({{1, 100.0}, {64, 200.0}, {512, 800.0}});
  double prev = 0.0;
  for (int b = 1; b <= 512; b *= 2) {
    const double t = curve.Micros(b);
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_GT(curve.Micros(32), 100.0);
  EXPECT_LT(curve.Micros(32), 200.0);
}

TEST(CostCurveTest, ExtrapolatesBeyondLastAnchor) {
  // Last segment doubles time per doubling of batch: extrapolation keeps
  // that slope.
  const CostCurve curve({{256, 400.0}, {512, 800.0}});
  EXPECT_NEAR(curve.Micros(1024), 1600.0, 1.0);
  EXPECT_NEAR(curve.Micros(2048), 3200.0, 2.0);
}

TEST(CostCurveTest, SingleAnchorIsConstant) {
  const CostCurve curve({{1, 5.0}});
  EXPECT_DOUBLE_EQ(curve.Micros(1), 5.0);
  EXPECT_DOUBLE_EQ(curve.Micros(100), 5.0);
}

TEST(CostCurveTest, ThroughputDefinition) {
  const CostCurve curve({{1, 100.0}, {64, 200.0}});
  EXPECT_NEAR(curve.Throughput(64), 64.0 / 200e-6, 1.0);
}

// ---------- Paper-derived preset curves ----------

TEST(PresetCurveTest, GpuLstmMatchesPaperNumbers) {
  const CostCurve curve = GpuLstmCurve();
  // §7.3: "batch size 64 ... takes about 185 microseconds".
  EXPECT_NEAR(curve.Micros(64), 185.0, 1.0);
  // §7.3: "the execution time of one LSTM cell is approximately 784
  // microseconds for the batch size 512".
  EXPECT_NEAR(curve.Micros(512), 784.0, 1.0);
  // Fig. 3: throughput peaks around b=512 at ~650k ops/s.
  EXPECT_GT(curve.Throughput(512), 600000.0);
  // §2.2: "When b > 512, the execution time approximately doubles as b
  // doubles" => little throughput gain past 512.
  EXPECT_LT(curve.Throughput(4096), curve.Throughput(512) * 1.05);
}

TEST(PresetCurveTest, GpuLstmFlatAtSmallBatch) {
  const CostCurve curve = GpuLstmCurve();
  // "execution time of a batch remains almost unchanged first".
  EXPECT_LT(curve.Micros(64) / curve.Micros(1), 1.15);
}

TEST(PresetCurveTest, AutotuneLstmPicks512) {
  EXPECT_EQ(AutotuneMaxBatch(GpuLstmCurve(), 4096), 512);
}

TEST(PresetCurveTest, AutotuneDecoderPicks256) {
  EXPECT_EQ(AutotuneMaxBatch(GpuDecoderCurve(), 2048), 256);
}

TEST(PresetCurveTest, DecoderRoughlyTripleEncoder) {
  // §7.4: decoding is ~75% of Seq2Seq compute at equal step counts.
  const double ratio = GpuDecoderCurve().Micros(256) / GpuLstmCurve().Micros(256);
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 3.6);
}

TEST(PresetCurveTest, OldTreeCurveIs20PercentSlower) {
  EXPECT_NEAR(GpuTreeCellOldCurve().Micros(64) / GpuTreeCellCurve().Micros(64), 1.2, 1e-6);
}

TEST(PresetCurveTest, CpuFarSlowerThanGpu) {
  EXPECT_GT(CpuLstmCurve().Micros(512) / GpuLstmCurve().Micros(512), 5.0);
}

TEST(PresetCurveTest, FixedLengthCeilingMatchesPaperArithmetic) {
  // §7.3: 1 / (784us * 24) * 512 ≈ 27136 req/s for fixed length-24 inputs.
  const double ceiling = 512.0 / (GpuLstmCurve().Micros(512) * 1e-6 * 24.0);
  EXPECT_NEAR(ceiling, 27136.0, 300.0);
}

// ---------- CostModel ----------

TEST(CostModelTest, OverheadAddsPerTask) {
  CostModel model;
  model.SetCurve(0, CostCurve({{1, 100.0}}));
  model.SetPerTaskOverheadMicros(65.0);
  EXPECT_DOUBLE_EQ(model.TaskMicros(0, 1), 165.0);
}

TEST(CostModelTest, PaperStepTimeWithOverhead) {
  // §7.3: ~250us per LSTM step at batch 64 including scheduling/gather.
  CostModel model;
  model.SetCurve(0, GpuLstmCurve());
  model.SetPerTaskOverheadMicros(kBatchMakerTaskOverheadMicros);
  model.SetPerItemOverheadMicros(kBatchMakerPerItemOverheadMicros);
  EXPECT_NEAR(model.TaskMicros(0, 64), 250.0, 5.0);
}

TEST(CostModelTest, PerItemOverheadScalesWithBatch) {
  CostModel model;
  model.SetCurve(0, CostCurve({{1, 100.0}}));
  model.SetPerTaskOverheadMicros(10.0);
  model.SetPerItemOverheadMicros(0.5);
  EXPECT_DOUBLE_EQ(model.TaskMicros(0, 1), 110.5);
  EXPECT_DOUBLE_EQ(model.TaskMicros(0, 100), 160.0);
}

TEST(CostModelDeathTest, MissingCurveAborts) {
  CostModel model;
  EXPECT_DEATH(model.TaskMicros(3, 1), "no cost curve");
}

// ---------- EventQueue ----------

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30.0, [&] { order.push_back(3); });
  q.ScheduleAt(10.0, [&] { order.push_back(1); });
  q.ScheduleAt(20.0, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.Now(), 30.0);
}

TEST(EventQueueTest, FifoAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] {
    ++fired;
    q.ScheduleAfter(5.0, [&] { ++fired; });
  });
  q.RunAll();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.Now(), 6.0);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(10.0, [&] { ++fired; });
  q.ScheduleAt(100.0, [&] { ++fired; });
  q.RunUntil(50.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.Now(), 50.0);
  EXPECT_EQ(q.Size(), 1u);
}

TEST(EventQueueDeathTest, PastSchedulingAborts) {
  EventQueue q;
  q.ScheduleAt(10.0, [] {});
  q.RunAll();
  EXPECT_DEATH(q.ScheduleAt(5.0, [] {}), "past");
}

// ---------- SimWorkerPool ----------

class SimWorkerPoolTest : public ::testing::Test {
 protected:
  SimWorkerPoolTest() {
    model_.SetCurve(0, CostCurve({{1, 100.0}}));  // constant 100us tasks
  }

  BatchedTask MakeTask(uint64_t id, int batch = 1) {
    BatchedTask task;
    task.id = id;
    task.type = 0;
    for (int i = 0; i < batch; ++i) {
      task.entries.push_back(TaskEntry{id, i});
    }
    return task;
  }

  EventQueue events_;
  CostModel model_;
  SimBackend backend_{&model_};
};

TEST_F(SimWorkerPoolTest, ExecutesSubmittedTask) {
  SimWorkerPool pool(1, &events_, &backend_);
  std::vector<uint64_t> done;
  pool.set_on_task_done([&](const BatchedTask& t) { done.push_back(t.id); });
  pool.Submit(0, MakeTask(7));
  events_.RunAll();
  EXPECT_EQ(done, (std::vector<uint64_t>{7}));
  EXPECT_DOUBLE_EQ(events_.Now(), 100.0);
}

TEST_F(SimWorkerPoolTest, StreamIsFifoAndSequential) {
  SimWorkerPool pool(1, &events_, &backend_);
  std::vector<std::pair<uint64_t, double>> done;
  pool.set_on_task_done([&](const BatchedTask& t) { done.emplace_back(t.id, events_.Now()); });
  pool.Submit(0, MakeTask(1));
  pool.Submit(0, MakeTask(2));
  pool.Submit(0, MakeTask(3));
  events_.RunAll();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].first, 1u);
  EXPECT_DOUBLE_EQ(done[0].second, 100.0);
  EXPECT_DOUBLE_EQ(done[1].second, 200.0);
  EXPECT_DOUBLE_EQ(done[2].second, 300.0);
}

TEST_F(SimWorkerPoolTest, IdleFiresWhenStreamDrains) {
  SimWorkerPool pool(1, &events_, &backend_);
  int idle_count = 0;
  pool.set_on_idle([&](int worker) {
    EXPECT_EQ(worker, 0);
    ++idle_count;
  });
  pool.Submit(0, MakeTask(1));
  pool.Submit(0, MakeTask(2));
  events_.RunAll();
  EXPECT_EQ(idle_count, 1);
}

TEST_F(SimWorkerPoolTest, TaskStartFiresBeforeDone) {
  SimWorkerPool pool(1, &events_, &backend_);
  std::vector<std::string> log;
  pool.set_on_task_start([&](const BatchedTask&) { log.push_back("start@" + std::to_string(events_.Now())); });
  pool.set_on_task_done([&](const BatchedTask&) { log.push_back("done@" + std::to_string(events_.Now())); });
  pool.Submit(0, MakeTask(1));
  pool.Submit(0, MakeTask(2));
  events_.RunAll();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].substr(0, 7), "start@0");
  EXPECT_EQ(log[1].substr(0, 6), "done@1");  // 100.0
}

TEST_F(SimWorkerPoolTest, WorkersRunInParallel) {
  SimWorkerPool pool(2, &events_, &backend_);
  std::vector<double> done_times;
  pool.set_on_task_done([&](const BatchedTask&) { done_times.push_back(events_.Now()); });
  pool.Submit(0, MakeTask(1));
  pool.Submit(1, MakeTask(2));
  events_.RunAll();
  ASSERT_EQ(done_times.size(), 2u);
  EXPECT_DOUBLE_EQ(done_times[0], 100.0);
  EXPECT_DOUBLE_EQ(done_times[1], 100.0);  // concurrent, not 200
}

TEST_F(SimWorkerPoolTest, ExplicitCostOverridesModel) {
  SimWorkerPool pool(1, &events_, &backend_);
  BatchedTask task = MakeTask(1);
  task.explicit_cost_micros = 42.0;
  pool.Submit(0, std::move(task));
  events_.RunAll();
  EXPECT_DOUBLE_EQ(events_.Now(), 42.0);
}

TEST_F(SimWorkerPoolTest, SubmitFromDoneCallbackContinuesStream) {
  SimWorkerPool pool(1, &events_, &backend_);
  int completions = 0;
  pool.set_on_task_done([&](const BatchedTask& t) {
    ++completions;
    if (t.id == 1) {
      pool.Submit(0, MakeTask(2));
    }
  });
  pool.Submit(0, MakeTask(1));
  events_.RunAll();
  EXPECT_EQ(completions, 2);
  EXPECT_DOUBLE_EQ(events_.Now(), 200.0);
}

TEST_F(SimWorkerPoolTest, AccountingCounters) {
  SimWorkerPool pool(1, &events_, &backend_);
  pool.Submit(0, MakeTask(1, /*batch=*/4));
  pool.Submit(0, MakeTask(2, /*batch=*/2));
  events_.RunAll();
  EXPECT_EQ(pool.TasksExecuted(0), 2);
  EXPECT_EQ(pool.ItemsExecuted(0), 6);
  EXPECT_DOUBLE_EQ(pool.BusyMicros(0), 200.0);
}

TEST_F(SimWorkerPoolTest, FindIdleWorker) {
  SimWorkerPool pool(2, &events_, &backend_);
  EXPECT_EQ(pool.FindIdleWorker(), 0);
  pool.Submit(0, MakeTask(1));
  EXPECT_EQ(pool.FindIdleWorker(), 1);
  pool.Submit(1, MakeTask(2));
  EXPECT_EQ(pool.FindIdleWorker(), -1);
  events_.RunAll();
  EXPECT_EQ(pool.FindIdleWorker(), 0);
}

TEST_F(SimWorkerPoolTest, QueueDepthTracksStream) {
  SimWorkerPool pool(1, &events_, &backend_);
  EXPECT_EQ(pool.QueueDepth(0), 0);
  pool.Submit(0, MakeTask(1));
  pool.Submit(0, MakeTask(2));
  EXPECT_EQ(pool.QueueDepth(0), 2);
  events_.RunAll();
  EXPECT_EQ(pool.QueueDepth(0), 0);
}

}  // namespace
}  // namespace batchmaker
