// Tests for the Scheduler (paper Algorithm 1): batching across requests,
// MaxTasksToSubmit pipelining, cell-type priorities, the three selection
// criteria, and subgraph pinning across workers.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/request_processor.h"
#include "src/core/scheduler.h"
#include "src/runtime/cost_model.h"
#include "tests/test_models.h"

namespace batchmaker {
namespace {

// Wires processor + scheduler and executes tasks on demand.
class SchedulerHarness {
 public:
  SchedulerHarness(const CellRegistry* registry, SchedulerOptions options = {}) {
    processor_ = std::make_unique<RequestProcessor>(
        registry, [this](Subgraph* sg) { scheduler_->EnqueueSubgraph(sg); },
        [this](RequestState* state) { completed_.push_back(state->id); });
    scheduler_ = std::make_unique<Scheduler>(registry, processor_.get(), options);
  }

  RequestProcessor& processor() { return *processor_; }
  Scheduler& scheduler() { return *scheduler_; }
  const std::vector<RequestId>& completed() const { return completed_; }

  // Runs Schedule(worker) once and completes the returned tasks in order.
  std::vector<BatchedTask> ScheduleAndComplete(int worker) {
    std::vector<BatchedTask> tasks = scheduler_->Schedule(worker);
    for (const BatchedTask& t : tasks) {
      scheduler_->OnTaskCompleted(t);
    }
    return tasks;
  }

  // Drives everything to completion on one worker; returns batch sizes in
  // execution order.
  std::vector<int> RunAll(int worker = 0) {
    std::vector<int> sizes;
    for (;;) {
      const auto tasks = ScheduleAndComplete(worker);
      if (tasks.empty()) {
        return sizes;
      }
      for (const auto& t : tasks) {
        sizes.push_back(t.BatchSize());
      }
    }
  }

 private:
  std::unique_ptr<RequestProcessor> processor_;
  std::unique_ptr<Scheduler> scheduler_;
  std::vector<RequestId> completed_;
};

// ---------- Cross-request batching ----------

TEST(SchedulerTest, BatchesSameStepAcrossRequests) {
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry);
  for (RequestId id = 1; id <= 4; ++id) {
    h.processor().AddRequest(id, fix.model.Unfold(3), 0.0);
  }
  const auto tasks = h.scheduler().Schedule(0);
  ASSERT_FALSE(tasks.empty());
  // One LSTM step batched over all 4 requests.
  EXPECT_EQ(tasks[0].BatchSize(), 4);
}

TEST(SchedulerTest, MaxTasksToSubmitPipelinesSteps) {
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry, SchedulerOptions{.max_tasks_to_submit = 5});
  h.processor().AddRequest(1, fix.model.Unfold(10), 0.0);
  const auto tasks = h.scheduler().Schedule(0);
  // A chain unlocks one successor per scheduled step, so one Schedule()
  // call pipelines exactly MaxTasksToSubmit steps.
  EXPECT_EQ(tasks.size(), 5u);
  for (const auto& t : tasks) {
    EXPECT_EQ(t.BatchSize(), 1);
  }
  for (const auto& t : tasks) {
    h.scheduler().OnTaskCompleted(t);
  }
}

TEST(SchedulerTest, MaxTasksToSubmitOneLimitsPipelining) {
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry, SchedulerOptions{.max_tasks_to_submit = 1});
  h.processor().AddRequest(1, fix.model.Unfold(10), 0.0);
  const auto tasks = h.scheduler().Schedule(0);
  EXPECT_EQ(tasks.size(), 1u);
  h.scheduler().OnTaskCompleted(tasks[0]);
}

TEST(SchedulerTest, MaxBatchCapsTaskSize) {
  TinyLstmFixture fix;
  fix.registry.SetMaxBatch(fix.model.cell_type(), 3);
  SchedulerHarness h(&fix.registry);
  for (RequestId id = 1; id <= 5; ++id) {
    h.processor().AddRequest(id, fix.model.Unfold(1), 0.0);
  }
  const auto tasks = h.scheduler().Schedule(0);
  ASSERT_GE(tasks.size(), 2u);
  EXPECT_EQ(tasks[0].BatchSize(), 3);
  EXPECT_EQ(tasks[1].BatchSize(), 2);
  for (const auto& t : tasks) {
    h.scheduler().OnTaskCompleted(t);
  }
}

TEST(SchedulerTest, CompletesAllRequests) {
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry);
  for (RequestId id = 1; id <= 7; ++id) {
    h.processor().AddRequest(id, fix.model.Unfold(static_cast<int>(id)), 0.0);
  }
  h.RunAll();
  EXPECT_EQ(h.completed().size(), 7u);
  EXPECT_EQ(h.processor().NumActiveRequests(), 0u);
  EXPECT_FALSE(h.scheduler().HasReadyWork());
}

TEST(SchedulerTest, NewRequestJoinsOngoingExecution) {
  // The core cellular-batching property (paper §3.2): a request arriving
  // mid-flight is batched with existing requests' later cells.
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry, SchedulerOptions{.max_tasks_to_submit = 1});
  h.processor().AddRequest(1, fix.model.Unfold(4), 0.0);

  auto tasks = h.ScheduleAndComplete(0);
  EXPECT_EQ(tasks[0].BatchSize(), 1);
  // Request 2 arrives after request 1 already ran one step.
  h.processor().AddRequest(2, fix.model.Unfold(4), 0.0);
  tasks = h.ScheduleAndComplete(0);
  ASSERT_EQ(tasks.size(), 1u);
  // The next task batches request 1's step 1 with request 2's step 0.
  EXPECT_EQ(tasks[0].BatchSize(), 2);
  std::vector<RequestId> ids;
  for (const TaskEntry& e : tasks[0].entries) {
    ids.push_back(e.request);
  }
  EXPECT_EQ(ids, (std::vector<RequestId>{1, 2}));
}

TEST(SchedulerTest, ShortRequestLeavesEarly) {
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry, SchedulerOptions{.max_tasks_to_submit = 1});
  h.processor().AddRequest(1, fix.model.Unfold(1), 0.0);
  h.processor().AddRequest(2, fix.model.Unfold(5), 0.0);
  h.ScheduleAndComplete(0);
  // After one batched step the short request is done; the long one is not.
  EXPECT_EQ(h.completed(), std::vector<RequestId>{1});
  EXPECT_EQ(h.processor().NumActiveRequests(), 1u);
}

// ---------- Priorities ----------

TEST(SchedulerTest, HigherPriorityTypeWinsAtEqualCriterion) {
  TinySeq2SeqFixture fix;
  SchedulerHarness h(&fix.registry, SchedulerOptions{.max_tasks_to_submit = 1});
  // Request A is in its decoding phase; request B just arrived.
  h.processor().AddRequest(1, fix.model.Unfold(1, 3), 0.0);
  auto tasks = h.ScheduleAndComplete(0);  // encoder step of A
  EXPECT_EQ(tasks[0].type, fix.model.encoder_type());
  h.processor().AddRequest(2, fix.model.Unfold(3, 3), 0.0);
  // Both decoder (A) and encoder (B) have 1 ready node and 0 running
  // tasks; decoder must win on priority.
  tasks = h.ScheduleAndComplete(0);
  ASSERT_FALSE(tasks.empty());
  EXPECT_EQ(tasks[0].type, fix.model.decoder_type());
}

TEST(SchedulerTest, TreeInternalPreferredOverLeaf) {
  TinyTreeLstmFixture fix;
  SchedulerHarness h(&fix.registry, SchedulerOptions{.max_tasks_to_submit = 1});
  h.processor().AddRequest(1, fix.model.Unfold(BinaryTree::Complete(4)), 0.0);
  // Execute the 4 leaves (one batched leaf task).
  auto tasks = h.ScheduleAndComplete(0);
  EXPECT_EQ(tasks[0].type, fix.model.leaf_type());
  EXPECT_EQ(tasks[0].BatchSize(), 4);
  // A new request's leaves now compete with request 1's internals.
  h.processor().AddRequest(2, fix.model.Unfold(BinaryTree::Complete(4)), 0.0);
  tasks = h.ScheduleAndComplete(0);
  ASSERT_FALSE(tasks.empty());
  EXPECT_EQ(tasks[0].type, fix.model.internal_type());
}

// ---------- Selection criteria ----------

TEST(SchedulerTest, FullBatchCriterionBeatsPriority) {
  TinySeq2SeqFixture fix;
  fix.registry.SetMaxBatch(fix.model.encoder_type(), 2);
  fix.registry.SetMaxBatch(fix.model.decoder_type(), 2);
  SchedulerHarness h(&fix.registry, SchedulerOptions{.max_tasks_to_submit = 1});
  // One request decoding (1 ready decoder node < max batch), two requests
  // with encoder nodes ready (= max batch). Criterion (a) selects the
  // encoder even though the decoder has higher priority.
  h.processor().AddRequest(1, fix.model.Unfold(1, 2), 0.0);
  auto tasks = h.ScheduleAndComplete(0);  // run A's encoder
  EXPECT_EQ(tasks[0].type, fix.model.encoder_type());
  h.processor().AddRequest(2, fix.model.Unfold(2, 1), 0.0);
  h.processor().AddRequest(3, fix.model.Unfold(2, 1), 0.0);
  EXPECT_EQ(h.scheduler().NumReadyNodes(fix.model.encoder_type()), 2);
  EXPECT_EQ(h.scheduler().NumReadyNodes(fix.model.decoder_type()), 1);
  tasks = h.ScheduleAndComplete(0);
  EXPECT_EQ(tasks[0].type, fix.model.encoder_type());
  EXPECT_EQ(tasks[0].BatchSize(), 2);
}

TEST(SchedulerTest, StarvedTypeCriterionRunsIdleType) {
  // Criterion (b): a type with no running tasks gets scheduled ahead of a
  // (higher-priority) type that already has tasks in flight.
  TinySeq2SeqFixture fix;
  SchedulerHarness h(&fix.registry, SchedulerOptions{.max_tasks_to_submit = 1});
  h.processor().AddRequest(1, fix.model.Unfold(1, 4), 0.0);
  auto enc = h.ScheduleAndComplete(0);
  EXPECT_EQ(enc[0].type, fix.model.encoder_type());

  // Start a decoder task but do NOT complete it.
  auto dec_tasks = h.scheduler().Schedule(0);
  ASSERT_EQ(dec_tasks.size(), 1u);
  EXPECT_EQ(dec_tasks[0].type, fix.model.decoder_type());

  // New request's encoder nodes: decoder has a running task, encoder does
  // not -> criterion (b) picks the encoder despite lower priority.
  h.processor().AddRequest(2, fix.model.Unfold(2, 1), 0.0);
  auto tasks = h.scheduler().Schedule(0);
  ASSERT_FALSE(tasks.empty());
  EXPECT_EQ(tasks[0].type, fix.model.encoder_type());
  h.scheduler().OnTaskCompleted(dec_tasks[0]);
  for (const auto& t : tasks) {
    h.scheduler().OnTaskCompleted(t);
  }
}

// ---------- Pinning across workers ----------

TEST(SchedulerTest, InflightSubgraphPinnedToWorker) {
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry, SchedulerOptions{.max_tasks_to_submit = 1});
  h.processor().AddRequest(1, fix.model.Unfold(4), 0.0);

  // Worker 0 takes step 0; the chain's remaining steps are pinned.
  auto tasks0 = h.scheduler().Schedule(0);
  ASSERT_EQ(tasks0.size(), 1u);
  // Worker 1 asks for work while worker 0's task is in flight: nothing
  // schedulable (the only subgraph is pinned to worker 0).
  const auto tasks1 = h.scheduler().Schedule(1);
  EXPECT_TRUE(tasks1.empty());

  // After completion the subgraph is unpinned; worker 1 can now take it.
  h.scheduler().OnTaskCompleted(tasks0[0]);
  const auto tasks2 = h.scheduler().Schedule(1);
  ASSERT_EQ(tasks2.size(), 1u);
  EXPECT_EQ(tasks2[0].worker, 1);
  h.scheduler().OnTaskCompleted(tasks2[0]);
}

TEST(SchedulerTest, UnpinnedOnlyWhenAllInflightTasksDone) {
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry, SchedulerOptions{.max_tasks_to_submit = 2});
  h.processor().AddRequest(1, fix.model.Unfold(4), 0.0);
  auto tasks = h.scheduler().Schedule(0);
  ASSERT_EQ(tasks.size(), 2u);
  h.scheduler().OnTaskCompleted(tasks[0]);
  // One task still in flight: still pinned away from worker 1.
  EXPECT_TRUE(h.scheduler().Schedule(1).empty());
  h.scheduler().OnTaskCompleted(tasks[1]);
  EXPECT_FALSE(h.scheduler().Schedule(1).empty());
}

TEST(SchedulerTest, WatermarkRefillNeverViolatesPinning) {
  // The pipelined server refills below-watermark workers while earlier
  // tasks are still in flight — i.e. it calls Schedule again with no
  // intervening OnTaskCompleted. Such a refill must never hand another
  // worker nodes of a subgraph pinned to the first, and a same-worker
  // refill must pipeline successor steps onto the same stream.
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry, SchedulerOptions{.max_tasks_to_submit = 2});
  h.processor().AddRequest(1, fix.model.Unfold(8), 0.0);

  const auto first = h.scheduler().Schedule(0);
  ASSERT_EQ(first.size(), 2u);  // a chain pipelines MaxTasksToSubmit steps
  // Successors unlocked at schedule time, so ready work remains — but all
  // of it is pinned to worker 0's stream: worker 1's refill gets nothing.
  EXPECT_TRUE(h.scheduler().HasReadyWork());
  EXPECT_FALSE(h.scheduler().HasCompatibleReadyWork(1));
  EXPECT_TRUE(h.scheduler().Schedule(1).empty());

  // Refilling worker 0 with both tasks still in flight extends its stream.
  const auto refill = h.scheduler().Schedule(0);
  ASSERT_EQ(refill.size(), 2u);
  for (const auto& t : refill) {
    EXPECT_EQ(t.worker, 0);
    EXPECT_EQ(t.entries[0].request, 1u);
  }

  // A new request's subgraph is unpinned: worker 1's refill picks it up
  // without touching request 1's pinned chain.
  h.processor().AddRequest(2, fix.model.Unfold(3), 0.0);
  EXPECT_TRUE(h.scheduler().HasCompatibleReadyWork(1));
  const auto other = h.scheduler().Schedule(1);
  ASSERT_FALSE(other.empty());
  for (const auto& t : other) {
    EXPECT_EQ(t.worker, 1);
    for (const auto& e : t.entries) {
      EXPECT_EQ(e.request, 2u);
    }
  }

  // Retire everything in stream order; both requests then run to the end.
  for (const auto& t : first) h.scheduler().OnTaskCompleted(t);
  for (const auto& t : refill) h.scheduler().OnTaskCompleted(t);
  for (const auto& t : other) h.scheduler().OnTaskCompleted(t);
  h.RunAll(0);
  EXPECT_EQ(h.completed().size(), 2u);
  EXPECT_FALSE(h.scheduler().HasReadyWork());
}

TEST(SchedulerTest, OtherRequestsScheduleOnSecondWorker) {
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry, SchedulerOptions{.max_tasks_to_submit = 1});
  h.processor().AddRequest(1, fix.model.Unfold(4), 0.0);
  auto t0 = h.scheduler().Schedule(0);
  // A second request arrives; worker 1 can serve it even though request
  // 1's subgraph is pinned to worker 0.
  h.processor().AddRequest(2, fix.model.Unfold(4), 0.0);
  auto t1 = h.scheduler().Schedule(1);
  ASSERT_EQ(t1.size(), 1u);
  EXPECT_EQ(t1[0].entries[0].request, 2u);
  h.scheduler().OnTaskCompleted(t0[0]);
  h.scheduler().OnTaskCompleted(t1[0]);
}

// ---------- Counters ----------

TEST(SchedulerTest, RunningTaskCounter) {
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry, SchedulerOptions{.max_tasks_to_submit = 3});
  h.processor().AddRequest(1, fix.model.Unfold(5), 0.0);
  const CellTypeId ct = fix.model.cell_type();
  EXPECT_EQ(h.scheduler().NumRunningTasks(ct), 0);
  auto tasks = h.scheduler().Schedule(0);
  EXPECT_EQ(h.scheduler().NumRunningTasks(ct), 3);
  h.scheduler().OnTaskCompleted(tasks[0]);
  EXPECT_EQ(h.scheduler().NumRunningTasks(ct), 2);
  h.scheduler().OnTaskCompleted(tasks[1]);
  h.scheduler().OnTaskCompleted(tasks[2]);
  EXPECT_EQ(h.scheduler().NumRunningTasks(ct), 0);
}

TEST(SchedulerTest, ReadyNodeCounterTracksChain) {
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry, SchedulerOptions{.max_tasks_to_submit = 1});
  const CellTypeId ct = fix.model.cell_type();
  h.processor().AddRequest(1, fix.model.Unfold(3), 0.0);
  EXPECT_EQ(h.scheduler().NumReadyNodes(ct), 1);
  auto tasks = h.ScheduleAndComplete(0);
  EXPECT_EQ(h.scheduler().NumReadyNodes(ct), 1);  // next step ready
  h.ScheduleAndComplete(0);
  h.ScheduleAndComplete(0);
  EXPECT_EQ(h.scheduler().NumReadyNodes(ct), 0);
  (void)tasks;
}

// ---------- Worker-idling regression ----------

TEST(SchedulerTest, FallsBackToNextTypeWhenChosenTypeIsFullyPinned) {
  // Regression: Schedule() used to pick the candidate cell type from the
  // global ready counts, which include subgraphs pinned to other workers.
  // If every ready node of the chosen type was pinned elsewhere, the formed
  // task was empty and Schedule() returned {} even though another type had
  // work this worker could run — leaving the worker idle.
  TinySeq2SeqFixture fix;
  fix.registry.SetMaxBatch(fix.model.encoder_type(), 2);
  SchedulerHarness h(&fix.registry, SchedulerOptions{.max_tasks_to_submit = 1});

  // Request 3 finishes its encoder so an unpinned decoder node is ready.
  h.processor().AddRequest(3, fix.model.Unfold(1, 3), 0.0);
  auto warm = h.ScheduleAndComplete(0);
  ASSERT_EQ(warm.size(), 1u);
  ASSERT_EQ(warm[0].type, fix.model.encoder_type());

  // Two 3-step encoder chains: 2 ready encoder nodes == max batch.
  h.processor().AddRequest(1, fix.model.Unfold(3, 1), 0.0);
  h.processor().AddRequest(2, fix.model.Unfold(3, 1), 0.0);
  ASSERT_EQ(h.scheduler().NumReadyNodes(fix.model.encoder_type()), 2);

  // Worker 0 takes the full encoder batch, pinning both chains to itself;
  // scheduling the first steps releases the second steps, so the encoder
  // still shows a full batch of (pinned) ready nodes.
  auto t0 = h.scheduler().Schedule(0);
  ASSERT_EQ(t0.size(), 1u);
  ASSERT_EQ(t0[0].type, fix.model.encoder_type());
  ASSERT_EQ(t0[0].BatchSize(), 2);
  ASSERT_EQ(h.scheduler().NumReadyNodes(fix.model.encoder_type()), 2);

  // Worker 1: criterion (a) nominates the encoder, but all its ready nodes
  // are pinned to worker 0. The decoder node of request 3 is compatible, so
  // Schedule(1) must fall back to it rather than return empty.
  ASSERT_TRUE(h.scheduler().HasCompatibleReadyWork(1));
  auto t1 = h.scheduler().Schedule(1);
  ASSERT_EQ(t1.size(), 1u);
  EXPECT_EQ(t1[0].type, fix.model.decoder_type());
  EXPECT_EQ(t1[0].entries[0].request, 3u);

  h.scheduler().OnTaskCompleted(t0[0]);
  h.scheduler().OnTaskCompleted(t1[0]);
}

TEST(SchedulerTest, WorkerNeverIdlesWithCompatibleReadyWork) {
  // Property over a mixed two-worker run: whenever Schedule(w) comes back
  // empty, there must be no ready subgraph that worker w was allowed to
  // run (the Algorithm 1 non-idling invariant).
  TinySeq2SeqFixture fix;
  fix.registry.SetMaxBatch(fix.model.encoder_type(), 2);
  fix.registry.SetMaxBatch(fix.model.decoder_type(), 2);
  SchedulerHarness h(&fix.registry, SchedulerOptions{.max_tasks_to_submit = 1});

  const int src_lens[6] = {1, 3, 2, 3, 1, 2};
  const int dst_lens[6] = {3, 1, 2, 1, 4, 2};
  for (RequestId id = 1; id <= 6; ++id) {
    h.processor().AddRequest(id, fix.model.Unfold(src_lens[id - 1], dst_lens[id - 1]),
                             0.0);
  }

  // Interleave the two workers; each completes its task before the other
  // schedules again, so subgraphs bounce between pinned and free states.
  std::vector<BatchedTask> in_flight[2];
  int rounds = 0;
  for (;;) {
    bool any = false;
    for (int w = 0; w < 2; ++w) {
      std::vector<BatchedTask> tasks = h.scheduler().Schedule(w);
      if (tasks.empty()) {
        EXPECT_FALSE(h.scheduler().HasCompatibleReadyWork(w))
            << "worker " << w << " idles while compatible work is ready";
      } else {
        any = true;
        for (BatchedTask& t : tasks) {
          in_flight[w].push_back(std::move(t));
        }
      }
    }
    // Complete worker 1's tasks first so pinning state varies.
    for (int w = 1; w >= 0; --w) {
      for (const BatchedTask& t : in_flight[w]) {
        h.scheduler().OnTaskCompleted(t);
      }
      in_flight[w].clear();
    }
    if (!any) {
      break;
    }
    ASSERT_LT(++rounds, 1000) << "scheduler did not converge";
  }
  EXPECT_EQ(h.completed().size(), 6u);
}

TEST(SchedulerTest, TreeLstmWholeRequestBatchesLeaves) {
  TinyTreeLstmFixture fix;
  fix.registry.SetMaxBatch(fix.model.leaf_type(), 64);
  fix.registry.SetMaxBatch(fix.model.internal_type(), 64);
  SchedulerHarness h(&fix.registry);
  h.processor().AddRequest(1, fix.model.Unfold(BinaryTree::Complete(16)), 0.0);
  const auto sizes = h.RunAll();
  // 16 leaves in one task, then internal levels 8, 4, 2, 1.
  EXPECT_EQ(sizes, (std::vector<int>{16, 8, 4, 2, 1}));
  EXPECT_EQ(h.completed().size(), 1u);
}

// ---------- Quarantine requeues vs the retry budget ----------

// Wiring that captures the terminal status alongside the id, which the
// shared harness discards.
struct StatusHarness {
  explicit StatusHarness(const CellRegistry* registry, SchedulerOptions options = {}) {
    processor = std::make_unique<RequestProcessor>(
        registry, [this](Subgraph* sg) { scheduler->EnqueueSubgraph(sg); },
        [this](RequestState* state) {
          finalized.emplace_back(state->id, state->status);
        });
    scheduler = std::make_unique<Scheduler>(registry, processor.get(), options);
  }

  std::unique_ptr<RequestProcessor> processor;
  std::unique_ptr<Scheduler> scheduler;
  std::vector<std::pair<RequestId, RequestStatus>> finalized;
};

TEST(SchedulerTest, QuarantineRequeueNeverExhaustsRetryBudget) {
  TinyLstmFixture fix;
  SchedulerOptions options;
  options.max_node_retries = 3;
  StatusHarness h(&fix.registry, options);
  h.processor->AddRequest(1, fix.model.Unfold(2), 0.0);
  // Reclaim far more times than the retry budget allows for real failures:
  // a quarantine requeue is victimless (the task never executed), so it
  // must never escalate the request to kFailed — "delayed, never lost".
  for (int round = 0; round < 4 * options.max_node_retries; ++round) {
    const std::vector<BatchedTask> tasks = h.scheduler->Schedule(0);
    ASSERT_FALSE(tasks.empty()) << "round " << round;
    for (const BatchedTask& t : tasks) {
      h.scheduler->RequeueTask(t);
    }
  }
  for (;;) {
    const std::vector<BatchedTask> tasks = h.scheduler->Schedule(0);
    if (tasks.empty()) {
      break;
    }
    for (const BatchedTask& t : tasks) {
      h.scheduler->OnTaskCompleted(t);
    }
  }
  ASSERT_EQ(h.finalized.size(), 1u);
  EXPECT_EQ(h.finalized[0].first, 1u);
  EXPECT_EQ(h.finalized[0].second, RequestStatus::kOk);
}

TEST(SchedulerTest, RepeatedExecutionFailuresStillExhaustRetryBudget) {
  TinyLstmFixture fix;
  SchedulerOptions options;
  options.max_node_retries = 3;
  StatusHarness h(&fix.registry, options);
  h.processor->AddRequest(1, fix.model.Unfold(1), 0.0);
  // Real victimless execution failures keep charging the budget; the
  // request escalates to kFailed instead of retrying forever.
  for (int round = 0; round < 100 && h.finalized.empty(); ++round) {
    const std::vector<BatchedTask> tasks = h.scheduler->Schedule(0);
    ASSERT_FALSE(tasks.empty()) << "round " << round;
    for (const BatchedTask& t : tasks) {
      std::vector<int> all(t.entries.size());
      for (size_t i = 0; i < t.entries.size(); ++i) {
        all[i] = static_cast<int>(i);
      }
      h.scheduler->OnTaskFailed(t, all, /*victim_entry=*/-1);
    }
  }
  ASSERT_EQ(h.finalized.size(), 1u);
  EXPECT_EQ(h.finalized[0].second, RequestStatus::kFailed);
}

// ---------- SLA-aware batch formation (DESIGN.md) ----------

// A strongly sub-linear curve: doubling the batch barely increases task
// cost, so the efficiency test always favours waiting for joiners.
CostCurve SubLinearCurve() { return CostCurve({{1, 100.0}, {8, 110.0}}); }

// A perfectly linear curve: per-item cost is constant, so waiting buys
// nothing and the knee-of-curve test launches immediately.
CostCurve LinearCurve() { return CostCurve({{1, 100.0}, {2, 200.0}, {8, 800.0}}); }

BatchPolicyOptions SlackPolicy(double max_delay = 500.0) {
  BatchPolicyOptions policy;
  policy.slack_batching = true;
  policy.max_delay_micros = max_delay;
  return policy;
}

TEST(SchedulerSlackTest, DefersSmallBatchThenLaunchesAtBudgetEnd) {
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry);
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), SubLinearCurve());
  h.scheduler().set_cost_model(&cost);
  h.scheduler().set_batch_policy(SlackPolicy(500.0));

  // One no-deadline request: infinite slack, sub-linear curve, batch far
  // below max -> defer.
  h.processor().AddRequest(1, fix.model.Unfold(1), 1000.0);
  EXPECT_TRUE(h.scheduler().Schedule(0, 1000.0).empty());
  EXPECT_DOUBLE_EQ(h.scheduler().NextLaunchMicros(), 1500.0);

  // Still inside the starvation budget: stays deferred, hint unchanged.
  EXPECT_TRUE(h.scheduler().Schedule(0, 1200.0).empty());
  EXPECT_DOUBLE_EQ(h.scheduler().NextLaunchMicros(), 1500.0);

  // Budget exhausted: launches even though the batch never grew, and the
  // delay is accounted.
  const auto tasks = h.scheduler().Schedule(0, 1500.0);
  ASSERT_FALSE(tasks.empty());
  EXPECT_EQ(tasks[0].BatchSize(), 1);
  EXPECT_EQ(h.scheduler().TotalDelayedLaunches(), 1);
  EXPECT_DOUBLE_EQ(h.scheduler().TotalBatchDelayMicros(), 500.0);
  for (const auto& t : tasks) {
    h.scheduler().OnTaskCompleted(t);
  }
}

TEST(SchedulerSlackTest, DeferredTypeGrowsBatchWhileWaiting) {
  // The point of delaying: a request arriving during the deferral window
  // joins the batch, so the eventual launch is bigger than greedy's.
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry);
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), SubLinearCurve());
  h.scheduler().set_cost_model(&cost);
  h.scheduler().set_batch_policy(SlackPolicy(500.0));

  h.processor().AddRequest(1, fix.model.Unfold(1), 0.0);
  EXPECT_TRUE(h.scheduler().Schedule(0, 0.0).empty());
  h.processor().AddRequest(2, fix.model.Unfold(1), 200.0);
  const auto tasks = h.scheduler().Schedule(0, 500.0);
  ASSERT_FALSE(tasks.empty());
  EXPECT_EQ(tasks[0].BatchSize(), 2);  // greedy would have launched 1 at t=0
  EXPECT_EQ(h.scheduler().TotalDelayedLaunches(), 1);
  for (const auto& t : tasks) {
    h.scheduler().OnTaskCompleted(t);
  }
}

TEST(SchedulerSlackTest, FullBatchLaunchesImmediately) {
  TinyLstmFixture fix;
  fix.registry.SetMaxBatch(fix.model.cell_type(), 2);
  SchedulerHarness h(&fix.registry);
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), SubLinearCurve());
  h.scheduler().set_cost_model(&cost);
  h.scheduler().set_batch_policy(SlackPolicy(500.0));

  h.processor().AddRequest(1, fix.model.Unfold(1), 0.0);
  h.processor().AddRequest(2, fix.model.Unfold(1), 0.0);
  // Waiting cannot grow a batch already at max_batch: no deferral.
  const auto tasks = h.scheduler().Schedule(0, 0.0);
  ASSERT_FALSE(tasks.empty());
  EXPECT_EQ(tasks[0].BatchSize(), 2);
  EXPECT_EQ(h.scheduler().TotalDelayedLaunches(), 0);
  for (const auto& t : tasks) {
    h.scheduler().OnTaskCompleted(t);
  }
}

TEST(SchedulerSlackTest, KneeOfCurveLaunchesImmediately) {
  // Linear cost region: doubling the batch doubles the cost, per-item gain
  // is zero < min_efficiency_gain, so waiting is pointless and the policy
  // launches greedily.
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry);
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), LinearCurve());
  h.scheduler().set_cost_model(&cost);
  h.scheduler().set_batch_policy(SlackPolicy(500.0));

  h.processor().AddRequest(1, fix.model.Unfold(1), 0.0);
  const auto tasks = h.scheduler().Schedule(0, 0.0);
  ASSERT_FALSE(tasks.empty());
  EXPECT_EQ(h.scheduler().TotalDelayedLaunches(), 0);
  for (const auto& t : tasks) {
    h.scheduler().OnTaskCompleted(t);
  }
}

TEST(SchedulerSlackTest, TightDeadlineForcesEarlyLaunch) {
  // SLA deadline 150us, estimated step cost ~100us, chain height 1:
  // launch_at = arrival + 150 - 1*cost ~= 50. At now=60 the launch instant
  // has passed, so the batch goes out immediately - no deferral, no
  // starvation-budget wait.
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry);
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), SubLinearCurve());
  h.scheduler().set_cost_model(&cost);
  h.scheduler().set_batch_policy(SlackPolicy(500.0));

  RequestState* state = h.processor().AddRequest(1, fix.model.Unfold(1), 0.0);
  state->deadline_micros = 150.0;
  const auto tasks = h.scheduler().Schedule(0, 60.0);
  ASSERT_FALSE(tasks.empty());
  EXPECT_EQ(h.scheduler().TotalDelayedLaunches(), 0);
  for (const auto& t : tasks) {
    h.scheduler().OnTaskCompleted(t);
  }
}

TEST(SchedulerSlackTest, DeadlineSetsLaunchHintTighterThanBudget) {
  // Same request, but consulted before its launch instant: the deferral
  // hint is the deadline-driven launch_at (50), not the starvation budget
  // end (500), and the batch launches exactly there.
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry);
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), SubLinearCurve());
  h.scheduler().set_cost_model(&cost);
  h.scheduler().set_batch_policy(SlackPolicy(500.0));

  RequestState* state = h.processor().AddRequest(1, fix.model.Unfold(1), 0.0);
  state->deadline_micros = 150.0;
  EXPECT_TRUE(h.scheduler().Schedule(0, 0.0).empty());
  EXPECT_DOUBLE_EQ(h.scheduler().NextLaunchMicros(),
                   150.0 - cost.TaskMicros(fix.model.cell_type(), 1));
  const auto tasks = h.scheduler().Schedule(0, h.scheduler().NextLaunchMicros());
  ASSERT_FALSE(tasks.empty());
  EXPECT_EQ(h.scheduler().TotalDelayedLaunches(), 1);
  for (const auto& t : tasks) {
    h.scheduler().OnTaskCompleted(t);
  }
}

TEST(SchedulerSlackTest, DeeperChainLaunchesEarlierViaHeight) {
  // A 3-step chain must finish 3 cost-model steps before its deadline, so
  // its launch instant is height*step earlier than a 1-step request's.
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry);
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), SubLinearCurve());
  h.scheduler().set_cost_model(&cost);
  h.scheduler().set_batch_policy(SlackPolicy(5000.0));

  RequestState* state = h.processor().AddRequest(1, fix.model.Unfold(3), 0.0);
  state->deadline_micros = 1000.0;
  EXPECT_TRUE(h.scheduler().Schedule(0, 0.0).empty());
  const double step = cost.TaskMicros(fix.model.cell_type(), 1);
  EXPECT_DOUBLE_EQ(h.scheduler().NextLaunchMicros(), 1000.0 - 3 * step);
}

TEST(SchedulerSlackTest, ZeroMaxDelayReproducesGreedy) {
  // The documented escape hatch: slack_batching on with max_delay 0 is
  // byte-for-byte the greedy policy.
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry);
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), SubLinearCurve());
  h.scheduler().set_cost_model(&cost);
  h.scheduler().set_batch_policy(SlackPolicy(0.0));

  h.processor().AddRequest(1, fix.model.Unfold(1), 0.0);
  const auto tasks = h.scheduler().Schedule(0, 0.0);
  ASSERT_FALSE(tasks.empty());
  EXPECT_EQ(h.scheduler().TotalDelayedLaunches(), 0);
  EXPECT_DOUBLE_EQ(h.scheduler().NextLaunchMicros(),
                   std::numeric_limits<double>::infinity());
  for (const auto& t : tasks) {
    h.scheduler().OnTaskCompleted(t);
  }
}

TEST(SchedulerSlackTest, CancelClearsDeferralAndHint) {
  // Regression: a deferred type whose only request is cancelled must not
  // keep a stale launch hint alive (the engine would wake for nothing).
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry);
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), SubLinearCurve());
  h.scheduler().set_cost_model(&cost);
  h.scheduler().set_batch_policy(SlackPolicy(500.0));

  h.processor().AddRequest(1, fix.model.Unfold(1), 0.0);
  EXPECT_TRUE(h.scheduler().Schedule(0, 0.0).empty());
  EXPECT_LT(h.scheduler().NextLaunchMicros(), std::numeric_limits<double>::infinity());
  h.scheduler().CancelRequest(1);
  EXPECT_DOUBLE_EQ(h.scheduler().NextLaunchMicros(),
                   std::numeric_limits<double>::infinity());
  EXPECT_FALSE(h.scheduler().HasReadyWork());
}

TEST(SchedulerSlackTest, ExpireLaunchHintsSilencesPassedHints) {
  // A hint that passed without a launch (e.g. all workers busy) is
  // silenced so the engine's timed wait cannot spin; the deferral persists
  // and the next feasible Schedule launches greedily.
  TinyLstmFixture fix;
  SchedulerHarness h(&fix.registry);
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), SubLinearCurve());
  h.scheduler().set_cost_model(&cost);
  h.scheduler().set_batch_policy(SlackPolicy(500.0));

  h.processor().AddRequest(1, fix.model.Unfold(1), 0.0);
  EXPECT_TRUE(h.scheduler().Schedule(0, 0.0).empty());
  EXPECT_DOUBLE_EQ(h.scheduler().NextLaunchMicros(), 500.0);

  h.scheduler().ExpireLaunchHints(600.0);
  EXPECT_DOUBLE_EQ(h.scheduler().NextLaunchMicros(),
                   std::numeric_limits<double>::infinity());

  // Budget long exhausted: the next Schedule launches and still accounts
  // the full deferral span.
  const auto tasks = h.scheduler().Schedule(0, 700.0);
  ASSERT_FALSE(tasks.empty());
  EXPECT_EQ(h.scheduler().TotalDelayedLaunches(), 1);
  EXPECT_DOUBLE_EQ(h.scheduler().TotalBatchDelayMicros(), 700.0);
  for (const auto& t : tasks) {
    h.scheduler().OnTaskCompleted(t);
  }
}

}  // namespace
}  // namespace batchmaker
