// Tests for the real-time threaded Server: correctness of concurrent
// batched execution against sequential references, callback semantics, and
// early return of short requests.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/server.h"
#include "src/graph/executor.h"
#include "tests/test_models.h"

namespace batchmaker {
namespace {

std::vector<Tensor> MakeChainExternals(const std::vector<Tensor>& xs, int64_t hidden) {
  std::vector<Tensor> ext = xs;
  ext.push_back(ExternalZeroVecTensor(hidden));
  ext.push_back(ExternalZeroVecTensor(hidden));
  return ext;
}

std::pair<Tensor, Tensor> ReferenceChain(const CellRegistry& registry, CellTypeId type,
                                         const std::vector<Tensor>& xs, int64_t hidden) {
  const CellExecutor& exec = registry.executor(type);
  Tensor h = Tensor::Zeros(Shape{1, hidden});
  Tensor c = Tensor::Zeros(Shape{1, hidden});
  for (const Tensor& x : xs) {
    auto out = exec.Execute({&x, &h, &c});
    h = std::move(out[0]);
    c = std::move(out[1]);
  }
  return {h, c};
}

TEST(ServerTest, SubmitAndWaitMatchesReference) {
  TinyLstmFixture fix;
  Server server(&fix.registry);
  server.Start();

  Rng data_rng(1);
  std::vector<Tensor> xs;
  for (int t = 0; t < 5; ++t) {
    xs.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng));
  }
  const Response res = server.SubmitAndWait(fix.model.Unfold(5), MakeChainExternals(xs, 4),
                                            {ValueRef::Output(4, 0)});
  server.Shutdown();

  const auto [ref_h, ref_c] = ReferenceChain(fix.registry, fix.model.cell_type(), xs, 4);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_TRUE(res.outputs[0].AllClose(ref_h, 1e-5f));
}

TEST(ServerTest, ConcurrentSubmissionsAllCorrect) {
  TinyLstmFixture fix;
  ServerOptions options;
  options.num_workers = 2;
  Server server(&fix.registry, options);
  server.Start();

  constexpr int kRequests = 24;
  std::vector<std::vector<Tensor>> inputs(kRequests);
  std::vector<std::future<std::vector<Tensor>>> futures;
  std::vector<std::promise<std::vector<Tensor>>> promises(kRequests);

  Rng data_rng(2);
  std::vector<int> lengths;
  for (int i = 0; i < kRequests; ++i) {
    const int len = 1 + static_cast<int>(data_rng.NextBelow(7));
    lengths.push_back(len);
    for (int t = 0; t < len; ++t) {
      inputs[static_cast<size_t>(i)].push_back(
          Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng));
    }
  }
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(promises[static_cast<size_t>(i)].get_future());
    auto* promise = &promises[static_cast<size_t>(i)];
    server.Submit(fix.model.Unfold(lengths[static_cast<size_t>(i)]),
                  MakeChainExternals(inputs[static_cast<size_t>(i)], 4),
                  {ValueRef::Output(lengths[static_cast<size_t>(i)] - 1, 0),
                   ValueRef::Output(lengths[static_cast<size_t>(i)] - 1, 1)},
                  [promise](RequestId, RequestStatus, std::vector<Tensor> outputs) {
                    promise->set_value(std::move(outputs));
                  });
  }
  for (int i = 0; i < kRequests; ++i) {
    const auto outputs = futures[static_cast<size_t>(i)].get();
    const auto [ref_h, ref_c] = ReferenceChain(fix.registry, fix.model.cell_type(),
                                               inputs[static_cast<size_t>(i)], 4);
    ASSERT_EQ(outputs.size(), 2u);
    EXPECT_TRUE(outputs[0].AllClose(ref_h, 1e-5f)) << "request " << i;
    EXPECT_TRUE(outputs[1].AllClose(ref_c, 1e-5f)) << "request " << i;
  }
  server.Shutdown();
  EXPECT_EQ(server.metrics().NumCompleted(), static_cast<size_t>(kRequests));
}

TEST(ServerTest, BatchesConcurrentRequests) {
  TinyLstmFixture fix;
  Server server(&fix.registry);
  server.Start();

  // Many same-length requests submitted at once: the server must batch
  // them (far fewer tasks than total cells).
  constexpr int kRequests = 16;
  constexpr int kLen = 6;
  Rng data_rng(3);
  std::vector<std::future<std::vector<Tensor>>> futures;
  std::vector<std::promise<std::vector<Tensor>>> promises(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    std::vector<Tensor> xs;
    for (int t = 0; t < kLen; ++t) {
      xs.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng));
    }
    futures.push_back(promises[static_cast<size_t>(i)].get_future());
    auto* promise = &promises[static_cast<size_t>(i)];
    server.Submit(fix.model.Unfold(kLen), MakeChainExternals(xs, 4),
                  {ValueRef::Output(kLen - 1, 0)},
                  [promise](RequestId, RequestStatus, std::vector<Tensor> outputs) {
                    promise->set_value(std::move(outputs));
                  });
  }
  for (auto& f : futures) {
    f.get();
  }
  server.Shutdown();
  // Perfect batching would be kLen tasks; allow slack for requests that
  // raced ahead before others were admitted.
  EXPECT_LT(server.TasksExecuted(), static_cast<int64_t>(kRequests) * kLen / 2);
}

TEST(ServerTest, TreeLstmRequestsServe) {
  TinyTreeLstmFixture fix;
  ServerOptions options;
  options.num_workers = 2;
  Server server(&fix.registry, options);
  server.Start();

  Rng rng(4);
  const CellExecutor& leaf_exec = fix.registry.executor(fix.model.leaf_type());
  const CellExecutor& internal_exec = fix.registry.executor(fix.model.internal_type());

  for (int iter = 0; iter < 8; ++iter) {
    const BinaryTree tree = BinaryTree::RandomParse(3 + static_cast<int>(rng.NextBelow(10)),
                                                    32, &rng);
    const CellGraph graph = fix.model.Unfold(tree);
    std::vector<Tensor> externals;
    for (const auto& n : tree.nodes) {
      if (n.is_leaf()) {
        externals.push_back(ExternalTokenTensor(n.token));
      }
    }
    const Response res =
        server.SubmitAndWait(CellGraph(graph), std::move(externals),
                             {ValueRef::Output(graph.NumNodes() - 1, 0)});

    // Recursive reference.
    std::function<std::pair<Tensor, Tensor>(int)> eval = [&](int id) {
      const auto& n = tree.nodes[static_cast<size_t>(id)];
      if (n.is_leaf()) {
        const Tensor token = ExternalTokenTensor(n.token);
        auto out = leaf_exec.Execute({&token});
        return std::make_pair(out[0], out[1]);
      }
      const auto [hl, cl] = eval(n.left);
      const auto [hr, cr] = eval(n.right);
      auto out = internal_exec.Execute({&hl, &cl, &hr, &cr});
      return std::make_pair(out[0], out[1]);
    };
    const auto [ref_h, ref_c] = eval(tree.root);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.outputs[0].AllClose(ref_h, 1e-5f)) << "iteration " << iter;
  }
  server.Shutdown();
}

TEST(ServerTest, ShortRequestReturnsBeforeLongOne) {
  TinyLstmFixture fix;
  Server server(&fix.registry);
  server.Start();

  Rng data_rng(5);
  std::atomic<bool> short_done{false};
  std::atomic<bool> long_done_after_short{false};
  std::promise<void> both_done;
  std::atomic<int> remaining{2};

  auto make_xs = [&data_rng](int len) {
    std::vector<Tensor> xs;
    for (int t = 0; t < len; ++t) {
      xs.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng));
    }
    return xs;
  };

  server.Submit(fix.model.Unfold(40), MakeChainExternals(make_xs(40), 4),
                {ValueRef::Output(39, 0)}, [&](RequestId, RequestStatus, std::vector<Tensor>) {
                  long_done_after_short.store(short_done.load());
                  if (remaining.fetch_sub(1) == 1) {
                    both_done.set_value();
                  }
                });
  server.Submit(fix.model.Unfold(2), MakeChainExternals(make_xs(2), 4),
                {ValueRef::Output(1, 0)}, [&](RequestId, RequestStatus, std::vector<Tensor>) {
                  short_done.store(true);
                  if (remaining.fetch_sub(1) == 1) {
                    both_done.set_value();
                  }
                });
  both_done.get_future().wait();
  server.Shutdown();
  // The length-2 request must complete before the length-40 one even
  // though they execute batched together.
  EXPECT_TRUE(long_done_after_short.load());
}

TEST(ServerTest, MetricsRecordEveryRequest) {
  TinyLstmFixture fix;
  Server server(&fix.registry);
  server.Start();
  Rng data_rng(6);
  for (int i = 0; i < 5; ++i) {
    std::vector<Tensor> xs;
    xs.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng));
    server.SubmitAndWait(fix.model.Unfold(1), MakeChainExternals(xs, 4),
                         {ValueRef::Output(0, 0)});
  }
  server.Shutdown();
  EXPECT_EQ(server.metrics().NumCompleted(), 5u);
  for (const auto& r : server.metrics().records()) {
    EXPECT_GE(r.exec_start_micros, r.arrival_micros);
    EXPECT_GE(r.completion_micros, r.exec_start_micros);
  }
}

TEST(ServerTest, ShutdownWithoutWorkIsClean) {
  TinyLstmFixture fix;
  Server server(&fix.registry);
  server.Start();
  server.Shutdown();
  server.Shutdown();  // second call is a no-op
  EXPECT_EQ(server.metrics().NumCompleted(), 0u);
}

TEST(ServerTest, Seq2SeqEndToEnd) {
  TinySeq2SeqFixture fix;
  Server server(&fix.registry);
  server.Start();
  const CellGraph graph = fix.model.Unfold(3, 3);
  std::vector<Tensor> externals;
  for (int32_t tok : {4, 7, 2}) {
    externals.push_back(ExternalTokenTensor(tok));
  }
  externals.push_back(ExternalTokenTensor(0));
  externals.push_back(ExternalZeroVecTensor(4));
  externals.push_back(ExternalZeroVecTensor(4));
  const Response res = server.SubmitAndWait(CellGraph(graph), std::move(externals),
                                            {ValueRef::Output(5, 2)});
  server.Shutdown();
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].dtype(), DType::kI32);
  EXPECT_GE(res.outputs[0].IntAt(0, 0), 0);
  EXPECT_LT(res.outputs[0].IntAt(0, 0), 32);
}

TEST(ServerTest, SubmitAndWaitAfterShutdownIsRejected) {
  TinyLstmFixture fix;
  Server server(&fix.registry);
  server.Start();
  server.Shutdown();
  Rng data_rng(7);
  std::vector<Tensor> xs = {Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng)};
  const Response res = server.SubmitAndWait(fix.model.Unfold(1), MakeChainExternals(xs, 4),
                                            {ValueRef::Output(0, 0)});
  // Rejection (raced/after Shutdown) is a kRejected terminal answer —
  // distinguishable from a legitimate response with no tensors.
  EXPECT_EQ(res.status, RequestStatus::kRejected);
  EXPECT_TRUE(res.outputs.empty());
  EXPECT_EQ(server.metrics().NumRejected(), 1u);
}

TEST(ServerTest, SubmitAndWaitEmptyOutputSetIsEngaged) {
  TinyLstmFixture fix;
  Server server(&fix.registry);
  server.Start();
  Rng data_rng(8);
  std::vector<Tensor> xs = {Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng)};
  // No outputs wanted: the request still executes and responds kOk with an
  // empty tensor vector, not a rejection.
  const Response res =
      server.SubmitAndWait(fix.model.Unfold(1), MakeChainExternals(xs, 4), {});
  server.Shutdown();
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.outputs.empty());
  EXPECT_EQ(server.metrics().NumCompleted(), 1u);
}

TEST(ServerTest, PipelinedStreamsMatchReferenceUnderLoad) {
  // Depth-4 streams on two workers with multi-threaded intra-task pools:
  // the staging thread overlaps gathers with execution, so this doubles as
  // the TSan stress for the pipeline's hazard tracking. Results must still
  // match the sequential reference exactly per request.
  TinyLstmFixture fix;
  ServerOptions options;
  options.num_workers = 2;
  options.threads_per_worker = 2;
  options.pipeline_depth = 4;
  Server server(&fix.registry, options);
  server.Start();

  constexpr int kRequests = 32;
  Rng data_rng(9);
  std::vector<std::vector<Tensor>> inputs(kRequests);
  std::vector<int> lengths;
  std::vector<std::promise<std::vector<Tensor>>> promises(kRequests);
  std::vector<std::future<std::vector<Tensor>>> futures;
  for (int i = 0; i < kRequests; ++i) {
    const int len = 1 + static_cast<int>(data_rng.NextBelow(9));
    lengths.push_back(len);
    for (int t = 0; t < len; ++t) {
      inputs[static_cast<size_t>(i)].push_back(
          Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng));
    }
  }
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(promises[static_cast<size_t>(i)].get_future());
    auto* promise = &promises[static_cast<size_t>(i)];
    server.Submit(fix.model.Unfold(lengths[static_cast<size_t>(i)]),
                  MakeChainExternals(inputs[static_cast<size_t>(i)], 4),
                  {ValueRef::Output(lengths[static_cast<size_t>(i)] - 1, 0)},
                  [promise](RequestId, RequestStatus, std::vector<Tensor> outputs) {
                    promise->set_value(std::move(outputs));
                  });
  }
  for (int i = 0; i < kRequests; ++i) {
    const auto outputs = futures[static_cast<size_t>(i)].get();
    const auto [ref_h, ref_c] = ReferenceChain(fix.registry, fix.model.cell_type(),
                                               inputs[static_cast<size_t>(i)], 4);
    ASSERT_EQ(outputs.size(), 1u);
    EXPECT_TRUE(outputs[0].AllClose(ref_h, 1e-5f)) << "request " << i;
  }
  server.Shutdown();
  EXPECT_EQ(server.metrics().NumCompleted(), static_cast<size_t>(kRequests));
}

TEST(ServerTest, WorkerIdleMetricAccumulates) {
  TinyLstmFixture fix;
  ServerOptions options;
  options.num_workers = 2;
  Server server(&fix.registry, options);
  server.Start();
  Rng data_rng(10);
  std::vector<Tensor> xs = {Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng)};
  server.SubmitAndWait(fix.model.Unfold(1), MakeChainExternals(xs, 4),
                       {ValueRef::Output(0, 0)});
  server.Shutdown();
  // Both exec threads spent time waiting for work (at minimum the gap
  // between Start and the first task / shutdown), and the total is the sum
  // of the per-worker figures.
  EXPECT_GT(server.TotalWorkerIdleMicros(), 0.0);
  double sum = 0.0;
  for (int w = 0; w < options.num_workers; ++w) {
    EXPECT_GE(server.WorkerIdleMicros(w), 0.0);
    sum += server.WorkerIdleMicros(w);
  }
  EXPECT_DOUBLE_EQ(sum, server.TotalWorkerIdleMicros());
}

TEST(ServerTest, SubmitRacingShutdownNeverLosesRequests) {
  // Stress the Submit/Shutdown race: submitter threads hammer Submit while
  // the main thread shuts the server down. Every submission gets exactly
  // one terminal callback: kOk before Shutdown() returns for accepted
  // requests, kRejected synchronously for ones that lost the race (which
  // used to wedge the drain with unfinished_requests_ stuck > 0).
  for (int round = 0; round < 5; ++round) {
    TinyLstmFixture fix;
    ServerOptions options;
    options.num_workers = 2;
    Server server(&fix.registry, options);
    server.Start();

    constexpr int kSubmitters = 4;
    constexpr int kMaxPerThread = 400;
    std::atomic<int> submitted{0};
    std::atomic<int> completed{0};
    std::atomic<int> rejected{0};
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        Rng rng(100 + t);
        for (int i = 0; i < kMaxPerThread; ++i) {
          std::vector<Tensor> xs = {Tensor::RandomUniform(Shape{1, 4}, 1.0f, &rng)};
          submitted.fetch_add(1);
          server.Submit(fix.model.Unfold(1), MakeChainExternals(xs, 4),
                        {ValueRef::Output(0, 0)},
                        [&](RequestId, RequestStatus status, std::vector<Tensor>) {
                          if (status == RequestStatus::kRejected) {
                            rejected.fetch_add(1);
                          } else {
                            EXPECT_EQ(status, RequestStatus::kOk);
                            completed.fetch_add(1);
                          }
                        });
          if (rejected.load() > 0) {
            return;  // the server is shutting down; stop submitting
          }
        }
      });
    }
    // Let the submitters race the shutdown for a moment.
    std::this_thread::sleep_for(std::chrono::milliseconds(1 + round));
    server.Shutdown();
    for (std::thread& t : submitters) {
      t.join();
    }
    // Exactly one terminal answer per submission, and every accepted
    // request completed before Shutdown returned.
    EXPECT_EQ(completed.load() + rejected.load(), submitted.load()) << "round " << round;
    EXPECT_EQ(server.metrics().NumCompleted(), static_cast<size_t>(completed.load()))
        << "round " << round;
    EXPECT_EQ(server.metrics().NumRejected(), static_cast<size_t>(rejected.load()))
        << "round " << round;
  }
}

}  // namespace
}  // namespace batchmaker
