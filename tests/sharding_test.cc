// Sharded-manager regression tests (DESIGN.md "Sharded manager").
//
// Three properties are under test. (1) Determinism: partitioning the
// manager into shards — including cross-shard steals — must not perturb a
// single output bit relative to the serial SyncEngine, at every
// shards x workers x pipeline_depth combination. (2) Pinning: only
// never-scheduled requests migrate; a request that has begun executing
// stays on its owner (asserted deterministically in virtual time, where
// the same stealing policy runs single-threaded). (3) Robustness: the
// PR 1-4 invariants — exactly one terminal callback per Submit, under
// faults, cancels, deadlines and racing shutdown — hold per shard and
// across steals. The stress test runs under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/server.h"
#include "src/core/sim_engine.h"
#include "src/core/sync_engine.h"
#include "tests/test_models.h"

namespace batchmaker {
namespace {

std::vector<Tensor> MakeChainExternals(const std::vector<Tensor>& xs, int64_t hidden) {
  std::vector<Tensor> ext = xs;
  ext.push_back(ExternalZeroVecTensor(hidden));
  ext.push_back(ExternalZeroVecTensor(hidden));
  return ext;
}

struct ChainRequest {
  int length = 0;
  std::vector<Tensor> xs;
};

std::vector<ChainRequest> MakeChainRequests(int count, int64_t input_dim,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<ChainRequest> requests;
  for (int i = 0; i < count; ++i) {
    ChainRequest r;
    r.length = 1 + static_cast<int>(rng.NextBelow(6));
    for (int t = 0; t < r.length; ++t) {
      r.xs.push_back(Tensor::RandomUniform(Shape{1, input_dim}, 1.0f, &rng));
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

std::vector<Tensor> ReferenceOutputs(const CellRegistry* registry, const LstmModel& model,
                                     const std::vector<ChainRequest>& requests,
                                     int64_t hidden) {
  SyncEngine engine(registry);
  std::vector<RequestId> ids;
  for (const ChainRequest& r : requests) {
    ids.push_back(engine.Submit(model.Unfold(r.length), MakeChainExternals(r.xs, hidden),
                                {ValueRef::Output(r.length - 1, 0)}));
  }
  engine.RunToCompletion();
  std::vector<Tensor> outputs;
  for (const RequestId id : ids) {
    std::vector<Tensor> out = engine.TakeResponse(id).outputs;
    outputs.push_back(std::move(out[0]));
  }
  return outputs;
}

CostModel UnitCostModel(const CellRegistry& registry) {
  CostModel model;
  for (CellTypeId t = 0; t < registry.NumTypes(); ++t) {
    model.SetCurve(t, UnitCostCurve());
  }
  return model;
}

// --- (1) Bitwise determinism vs SyncEngine under sharding ------------------

TEST(ShardingTest, ShardedServerMatchesSyncEngineBitwiseAtEveryConfig) {
  constexpr int64_t kHidden = 4;
  constexpr int kRequests = 18;
  TinyLstmFixture ref_fix;
  const auto requests = MakeChainRequests(kRequests, kHidden, /*seed=*/71);
  const auto reference = ReferenceOutputs(&ref_fix.registry, ref_fix.model,
                                          requests, kHidden);

  for (const int shards : {1, 2, 4}) {
    for (const int workers : {2, 4}) {
      for (const int depth : {1, 2}) {
        TinyLstmFixture fix;
        ServerOptions options;
        options.num_workers = workers;
        options.num_shards = shards;
        options.pipeline_depth = depth;
        options.enable_tracing = true;
        Server server(&fix.registry, options);
        ASSERT_EQ(server.num_shards(), std::min(shards, workers));
        server.Start();

        std::vector<std::promise<Response>> promises(kRequests);
        std::vector<std::future<Response>> futures;
        for (int i = 0; i < kRequests; ++i) {
          futures.push_back(promises[static_cast<size_t>(i)].get_future());
        }
        for (int i = 0; i < kRequests; ++i) {
          const ChainRequest& r = requests[static_cast<size_t>(i)];
          auto* promise = &promises[static_cast<size_t>(i)];
          server.Submit(fix.model.Unfold(r.length), MakeChainExternals(r.xs, kHidden),
                        {ValueRef::Output(r.length - 1, 0)},
                        [promise](RequestId, RequestStatus status,
                                  std::vector<Tensor> outputs) {
                          promise->set_value(Response{status, std::move(outputs)});
                        });
        }
        for (int i = 0; i < kRequests; ++i) {
          const Response res = futures[static_cast<size_t>(i)].get();
          ASSERT_TRUE(res.ok())
              << "request " << i << " shards " << shards << " workers " << workers
              << " depth " << depth;
          ASSERT_EQ(res.outputs.size(), 1u);
          // Bitwise, not approximately: wherever the request ran — home
          // shard or stolen — the numbers must be the serial numbers.
          EXPECT_TRUE(res.outputs[0].ElementsEqual(reference[static_cast<size_t>(i)]))
              << "request " << i << " shards " << shards << " workers " << workers
              << " depth " << depth;
        }
        server.Shutdown();

        // Steal accounting is consistent however many steals happened:
        // the atomic total, the per-shard counters and the trace agree.
        EXPECT_EQ(server.metrics().TotalSteals(), server.StealsExecuted());
        EXPECT_EQ(server.trace().Count(TraceEventKind::kShardSteal),
                  server.StealsExecuted());
        if (server.num_shards() == 1) {
          EXPECT_EQ(server.StealsExecuted(), 0);
        }
        size_t shard_completions = 0;
        for (int s = 0; s < server.num_shards(); ++s) {
          shard_completions += static_cast<size_t>(
              server.metrics().shard(s).completions.load());
        }
        EXPECT_EQ(shard_completions, static_cast<size_t>(kRequests));
      }
    }
  }
}

TEST(ShardingTest, SlackBatchingShardedServerMatchesSyncEngineBitwise) {
  // Slack-aware batch formation under sharding: deferred launches, steals
  // and the online cost model together must not perturb one output bit.
  // Every request carries a generous SLA deadline so the slack policy has
  // real per-node slacks to reason about, but nothing sheds.
  constexpr int64_t kHidden = 4;
  constexpr int kRequests = 18;
  TinyLstmFixture ref_fix;
  const auto requests = MakeChainRequests(kRequests, kHidden, /*seed=*/73);
  const auto reference = ReferenceOutputs(&ref_fix.registry, ref_fix.model,
                                          requests, kHidden);

  for (const int shards : {1, 2}) {
    for (const int depth : {1, 2}) {
      TinyLstmFixture fix;
      ServerOptions options;
      options.num_workers = 2;
      options.num_shards = shards;
      options.pipeline_depth = depth;
      options.batch_policy.slack_batching = true;
      options.batch_policy.max_delay_micros = 200.0;
      Server server(&fix.registry, options);
      server.Start();

      std::vector<std::promise<Response>> promises(kRequests);
      std::vector<std::future<Response>> futures;
      for (int i = 0; i < kRequests; ++i) {
        futures.push_back(promises[static_cast<size_t>(i)].get_future());
      }
      for (int i = 0; i < kRequests; ++i) {
        const ChainRequest& r = requests[static_cast<size_t>(i)];
        auto* promise = &promises[static_cast<size_t>(i)];
        server.Submit(fix.model.Unfold(r.length), MakeChainExternals(r.xs, kHidden),
                      {ValueRef::Output(r.length - 1, 0)},
                      [promise](RequestId, RequestStatus status,
                                std::vector<Tensor> outputs) {
                        promise->set_value(Response{status, std::move(outputs)});
                      },
                      SubmitOptions{.deadline_micros = 10e6});
      }
      for (int i = 0; i < kRequests; ++i) {
        const Response res = futures[static_cast<size_t>(i)].get();
        ASSERT_TRUE(res.ok())
            << "request " << i << " shards " << shards << " depth " << depth;
        ASSERT_EQ(res.outputs.size(), 1u);
        EXPECT_TRUE(res.outputs[0].ElementsEqual(reference[static_cast<size_t>(i)]))
            << "request " << i << " shards " << shards << " depth " << depth
            << " with slack batching on";
      }
      server.Shutdown();
      EXPECT_EQ(server.metrics().NumCompleted(), static_cast<size_t>(kRequests));
      EXPECT_EQ(server.metrics().NumDropped(), 0u);
    }
  }
}

// --- (2) Steal policy, deterministically in virtual time --------------------

TEST(ShardingTest, SkewedLoadTriggersStealsDeterministically) {
  // Shard 0 (even ids) gets six length-1 chains, shard 1 (odd ids) six
  // length-12 chains. Batch cap 2 and a one-deep stream keep four of
  // shard 1's requests never-scheduled; when shard 0 drains at t~3 its
  // worker idles with no compatible work and must steal them. Virtual
  // time makes the whole schedule — including every migration — exactly
  // reproducible, so we run it twice and demand identical timelines.
  const auto run_once = [](std::map<RequestId, double>* completions) {
    TinyLstmFixture fix;
    fix.registry.SetMaxBatch(fix.model.cell_type(), 2);
    const CostModel cost = UnitCostModel(fix.registry);
    SimEngineOptions options;
    options.num_workers = 2;
    options.num_shards = 2;
    options.enable_tracing = true;
    options.scheduler.max_tasks_to_submit = 1;
    SimEngine engine(&fix.registry, &cost, options);
    for (int i = 0; i < 12; ++i) {
      // Submission i gets id i+1: odd ids (even i) route to shard 1 and
      // are long; even ids route to shard 0 and are short.
      const int length = (i % 2 == 0) ? 12 : 1;
      engine.SubmitAt(0.0, fix.model.Unfold(length));
    }
    engine.Run();
    EXPECT_EQ(engine.metrics().NumCompleted(), 12u);
    EXPECT_GT(engine.StealsExecuted(), 0);
    EXPECT_EQ(engine.trace().Count(TraceEventKind::kShardSteal),
              engine.StealsExecuted());
    for (const RequestRecord& r : engine.metrics().records()) {
      (*completions)[r.id] = r.completion_micros;
    }
    return engine.StealsExecuted();
  };

  std::map<RequestId, double> first, second;
  const int64_t steals_first = run_once(&first);
  const int64_t steals_second = run_once(&second);
  EXPECT_EQ(steals_first, steals_second);
  ASSERT_EQ(first.size(), 12u);
  ASSERT_EQ(second.size(), 12u);
  for (const auto& [id, t] : first) {
    EXPECT_DOUBLE_EQ(second.at(id), t) << "request " << id;
  }
}

TEST(ShardingTest, InFlightRequestsAreNeverStolen) {
  // Shard 0's two long requests are co-batched and scheduled immediately,
  // so when shard 1 drains its short ones and goes hungry there is
  // nothing stealable anywhere: pinned (ever-scheduled) work must stay
  // put, even though shard 1's worker then idles for ten task-times.
  TinyLstmFixture fix;
  fix.registry.SetMaxBatch(fix.model.cell_type(), 2);
  const CostModel cost = UnitCostModel(fix.registry);
  SimEngineOptions options;
  options.num_workers = 2;
  options.num_shards = 2;
  options.enable_tracing = true;
  options.scheduler.max_tasks_to_submit = 1;
  SimEngine engine(&fix.registry, &cost, options);
  for (int i = 0; i < 4; ++i) {
    // ids 1..4: odd -> shard 1 (short), even -> shard 0 (long).
    const int length = (i % 2 == 0) ? 1 : 20;
    engine.SubmitAt(0.0, fix.model.Unfold(length));
  }
  engine.Run();
  EXPECT_EQ(engine.metrics().NumCompleted(), 4u);
  EXPECT_EQ(engine.StealsExecuted(), 0);
  EXPECT_EQ(engine.trace().Count(TraceEventKind::kShardSteal), 0);
}

TEST(ShardingTest, SingleShardSimTimelineIsUnchangedByShardingCode) {
  // The Figure 5 scenario (asserted step-by-step in sim_engine_test) run
  // through the sharded code path with num_shards = 1: the timeline must
  // be the pre-sharding one, to the last decimal.
  TinyLstmFixture fix;
  fix.registry.SetMaxBatch(fix.model.cell_type(), 4);
  const CostModel cost = UnitCostModel(fix.registry);
  SimEngineOptions options;
  options.scheduler.max_tasks_to_submit = 1;
  SimEngine engine(&fix.registry, &cost, options);
  const int lengths[8] = {2, 3, 3, 5, 5, 7, 3, 1};
  const double arrivals[8] = {0, 0, 0, 0, 1.5, 2.5, 2.5, 4.5};
  for (int i = 0; i < 8; ++i) {
    engine.SubmitAt(arrivals[i], fix.model.Unfold(lengths[i]));
  }
  engine.Run();
  ASSERT_EQ(engine.metrics().NumCompleted(), 8u);
  EXPECT_EQ(engine.num_shards(), 1);
  EXPECT_EQ(engine.StealsExecuted(), 0);
  std::map<RequestId, double> done;
  for (const auto& r : engine.metrics().records()) {
    done[r.id] = r.completion_micros;
  }
  EXPECT_DOUBLE_EQ(done[1], 2.0);
  EXPECT_DOUBLE_EQ(done[2], 3.0);
  EXPECT_DOUBLE_EQ(done[3], 3.0);
  EXPECT_DOUBLE_EQ(done[4], 5.0);
}

// --- (3) Faults, cancels and shutdown races under sharding ------------------

TEST(ShardingTest, CancelBroadcastLandsExactlyOnceWhereverTheRequestLives) {
  // Cancels are broadcast to every shard (the owner may have changed via
  // a steal; non-owners keep a tombstone in case the request migrates in
  // behind the cancel). Whatever the interleaving: one terminal callback,
  // status kCancelled or kOk, never a hang.
  TinyLstmFixture fix;
  ServerOptions options;
  options.num_workers = 2;
  options.num_shards = 2;
  options.pipeline_depth = 2;
  Server server(&fix.registry, options);
  server.Start();
  Rng data_rng(72);

  constexpr int kRequests = 24;
  std::mutex mu;
  std::map<RequestId, int> callback_counts;
  std::map<RequestId, RequestStatus> statuses;
  std::vector<RequestId> ids;
  for (int i = 0; i < kRequests; ++i) {
    const int len = 2 + (i % 5);
    std::vector<Tensor> xs;
    for (int t = 0; t < len; ++t) {
      xs.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng));
    }
    ids.push_back(server.Submit(
        fix.model.Unfold(len), MakeChainExternals(xs, 4), {ValueRef::Output(len - 1, 0)},
        [&](RequestId rid, RequestStatus status, std::vector<Tensor>) {
          std::lock_guard<std::mutex> lock(mu);
          callback_counts[rid]++;
          statuses[rid] = status;
        }));
    if (i % 2 == 1) {
      server.Cancel(ids.back());
    }
  }
  server.Shutdown();

  ASSERT_EQ(callback_counts.size(), static_cast<size_t>(kRequests));
  for (const auto& [id, count] : callback_counts) {
    EXPECT_EQ(count, 1) << "request " << id;
    const RequestStatus status = statuses.at(id);
    EXPECT_TRUE(status == RequestStatus::kOk || status == RequestStatus::kCancelled)
        << "request " << id;
  }
}

TEST(ShardingTest, InjectedFaultsUnderShardingInnocentsBitwiseIdentical) {
  constexpr int64_t kHidden = 4;
  TinyLstmFixture fix;
  const auto requests = MakeChainRequests(16, kHidden, /*seed=*/73);
  const auto reference = ReferenceOutputs(&fix.registry, fix.model, requests, kHidden);

  ServerOptions options;
  options.num_workers = 2;
  options.num_shards = 2;
  options.fault.fail_rate = 0.2;
  options.fault.fail_task_id = 0;  // guarantee at least one fault fires
  options.fault.seed = 321;
  Server server(&fix.registry, options);
  server.Start();

  std::mutex mu;
  std::map<RequestId, int> callback_counts;
  std::map<RequestId, RequestStatus> statuses;
  std::map<RequestId, std::vector<Tensor>> outputs;
  std::vector<RequestId> ids;
  for (const ChainRequest& r : requests) {
    ids.push_back(server.Submit(
        fix.model.Unfold(r.length), MakeChainExternals(r.xs, kHidden),
        {ValueRef::Output(r.length - 1, 0)},
        [&](RequestId rid, RequestStatus status, std::vector<Tensor> out) {
          std::lock_guard<std::mutex> lock(mu);
          callback_counts[rid]++;
          statuses[rid] = status;
          outputs[rid] = std::move(out);
        }));
  }
  server.Shutdown();

  EXPECT_GE(server.TasksFailed(), 1);
  ASSERT_EQ(callback_counts.size(), ids.size());
  size_t ok = 0, failed = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(callback_counts.at(ids[i]), 1) << "request " << i;
    const RequestStatus status = statuses.at(ids[i]);
    if (status == RequestStatus::kOk) {
      ++ok;
      ASSERT_EQ(outputs.at(ids[i]).size(), 1u);
      EXPECT_TRUE(outputs.at(ids[i])[0].ElementsEqual(reference[i])) << "request " << i;
    } else {
      ASSERT_EQ(status, RequestStatus::kFailed) << "request " << i;
      ++failed;
    }
  }
  EXPECT_EQ(ok + failed, ids.size());
  EXPECT_EQ(server.metrics().NumCompleted(), ok);
  EXPECT_EQ(server.metrics().NumFailed(), failed);
}

// Submissions (valid and invalid), deadlines, faults, cancels and a racing
// Shutdown against a 2-shard server. The invariant: exactly one terminal
// callback per Submit, and the status counters add up. Run under TSan.
TEST(ShardingTest, ConcurrentStressUnderShardingExactlyOneTerminalCallback) {
  constexpr int kSubmitters = 3;
  constexpr int kPerThread = 50;
  TinyLstmFixture fix;
  ServerOptions options;
  options.num_workers = 2;
  options.num_shards = 2;
  options.pipeline_depth = 2;
  options.fault.fail_rate = 0.05;
  options.fault.seed = 74;
  options.admission.queue_timeout_micros = 50000.0;
  Server server(&fix.registry, options);
  server.Start();

  std::mutex mu;
  std::map<RequestId, int> callback_counts;
  std::map<RequestId, RequestStatus> statuses;
  std::atomic<int> submitted{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(200 + t));
      std::vector<RequestId> my_ids;
      for (int i = 0; i < kPerThread; ++i) {
        const int len = 1 + (i % 4);
        std::vector<Tensor> externals;
        if (i % 9 == 4) {
          // Deliberately invalid: missing the zero-state externals.
          for (int s = 0; s < len; ++s) {
            externals.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &rng));
          }
        } else {
          std::vector<Tensor> xs;
          for (int s = 0; s < len; ++s) {
            xs.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &rng));
          }
          externals = MakeChainExternals(xs, 4);
        }
        submitted.fetch_add(1);
        const double deadline = (i % 5 == 4) ? 200.0 : 0.0;
        const RequestId id = server.Submit(
            fix.model.Unfold(len), std::move(externals), {ValueRef::Output(len - 1, 0)},
            [&](RequestId rid, RequestStatus status, std::vector<Tensor>) {
              std::lock_guard<std::mutex> lock(mu);
              callback_counts[rid]++;
              statuses[rid] = status;
            },
            SubmitOptions{.deadline_micros = deadline, .priority = i % 3});
        my_ids.push_back(id);
        if (i % 7 == 6) {
          server.Cancel(my_ids[rng.NextBelow(my_ids.size())]);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  server.Shutdown();  // races the submitters: stragglers get kRejected
  for (std::thread& t : submitters) {
    t.join();
  }

  ASSERT_EQ(callback_counts.size(), static_cast<size_t>(submitted.load()));
  size_t ok = 0, shed = 0, rejected = 0, failed = 0, cancelled = 0;
  for (const auto& [id, count] : callback_counts) {
    EXPECT_EQ(count, 1) << "request " << id;
    switch (statuses.at(id)) {
      case RequestStatus::kOk: ++ok; break;
      case RequestStatus::kShed: ++shed; break;
      case RequestStatus::kRejected: ++rejected; break;
      case RequestStatus::kFailed: ++failed; break;
      case RequestStatus::kCancelled: ++cancelled; break;
    }
  }
  EXPECT_EQ(ok + shed + rejected + failed + cancelled,
            static_cast<size_t>(submitted.load()));
  EXPECT_EQ(server.metrics().NumCompleted(), ok);
  EXPECT_EQ(server.metrics().NumDropped(), shed);
  EXPECT_EQ(server.metrics().NumRejected(), rejected);
  EXPECT_EQ(server.metrics().NumFailed(), failed);
  EXPECT_EQ(server.metrics().TotalSteals(), server.StealsExecuted());
}

}  // namespace
}  // namespace batchmaker
