// Tests for SimEngine: end-to-end virtual-time serving with the real
// scheduler, including the paper's Figure 5 scenario.

#include <gtest/gtest.h>

#include <map>

#include "src/core/sim_engine.h"
#include "tests/test_models.h"

namespace batchmaker {
namespace {

CostModel UnitCostModel(const CellRegistry& registry) {
  CostModel model;
  for (CellTypeId t = 0; t < registry.NumTypes(); ++t) {
    model.SetCurve(t, UnitCostCurve());
  }
  return model;
}

TEST(SimEngineTest, SingleRequestCompletes) {
  TinyLstmFixture fix;
  const CostModel cost = UnitCostModel(fix.registry);
  SimEngine engine(&fix.registry, &cost);
  engine.SubmitAt(0.0, fix.model.Unfold(5));
  engine.Run();
  ASSERT_EQ(engine.metrics().NumCompleted(), 1u);
  const RequestRecord& r = engine.metrics().records()[0];
  // 5 unit-cost steps, executed back to back from t=0.
  EXPECT_DOUBLE_EQ(r.completion_micros, 5.0);
  EXPECT_DOUBLE_EQ(r.exec_start_micros, 0.0);
  EXPECT_DOUBLE_EQ(r.QueueingMicros(), 0.0);
}

TEST(SimEngineTest, LatencyAccountsForQueueing) {
  TinyLstmFixture fix;
  CostModel cost = UnitCostModel(fix.registry);
  SimEngineOptions options;
  options.scheduler.max_tasks_to_submit = 1;
  SimEngine engine(&fix.registry, &cost, options);
  engine.SubmitAt(0.0, fix.model.Unfold(10));
  engine.SubmitAt(0.5, fix.model.Unfold(1));  // arrives mid-task
  engine.Run();
  ASSERT_EQ(engine.metrics().NumCompleted(), 2u);
  // The short request joins at the end of the in-flight unit task (t=1)
  // and finishes at t=2 batched with the long request's second step.
  std::map<RequestId, RequestRecord> by_id;
  for (const auto& r : engine.metrics().records()) {
    by_id[r.id] = r;
  }
  EXPECT_DOUBLE_EQ(by_id[2].exec_start_micros, 1.0);
  EXPECT_DOUBLE_EQ(by_id[2].completion_micros, 2.0);
  EXPECT_DOUBLE_EQ(by_id[2].QueueingMicros(), 0.5);
  EXPECT_DOUBLE_EQ(by_id[1].completion_micros, 10.0);
}

TEST(SimEngineTest, Figure5CellularBatchingTimeline) {
  // Paper Figure 5(b): 8 chain requests, unit-cost cells, batch size 4.
  // req1-4 (lengths 2,3,3,5) arrive at t=0; req5(5), req6(7), req7(3),
  // req8(1) arrive while the first four are running. Under cellular
  // batching req1 completes at t=2 and new requests join immediately.
  TinyLstmFixture fix;
  fix.registry.SetMaxBatch(fix.model.cell_type(), 4);
  CostModel cost = UnitCostModel(fix.registry);
  SimEngineOptions options;
  options.scheduler.max_tasks_to_submit = 1;  // join at every step boundary
  SimEngine engine(&fix.registry, &cost, options);

  const int lengths[8] = {2, 3, 3, 5, 5, 7, 3, 1};
  const double arrivals[8] = {0, 0, 0, 0, 1.5, 2.5, 2.5, 4.5};
  for (int i = 0; i < 8; ++i) {
    engine.SubmitAt(arrivals[i], fix.model.Unfold(lengths[i]));
  }
  engine.Run();
  ASSERT_EQ(engine.metrics().NumCompleted(), 8u);
  std::map<RequestId, double> done;
  for (const auto& r : engine.metrics().records()) {
    done[r.id] = r.completion_micros;
  }
  // req1 (len 2) leaves after two fully-batched steps.
  EXPECT_DOUBLE_EQ(done[1], 2.0);
  // req2, req3 (len 3) leave at t=3; req5 joined at t=2 in their place.
  EXPECT_DOUBLE_EQ(done[2], 3.0);
  EXPECT_DOUBLE_EQ(done[3], 3.0);
  // req4 (len 5) never waits: done at 5.
  EXPECT_DOUBLE_EQ(done[4], 5.0);
  // req8 (len 1, arrives 4.5) completes with the step ending at 6 at the
  // latest — it joins the running batch instead of waiting for it.
  EXPECT_LE(done[8], 6.0);
  // Under graph batching the second batch would finish at t=12; cellular
  // batching finishes everything by t=9 (req6: arrives 2.5, 7 steps).
  for (const auto& [id, t] : done) {
    EXPECT_LE(t, 10.0) << "request " << id;
  }
}

TEST(SimEngineTest, PipelineDepthTradesBatchingForStreamDepth) {
  // The watermark-refill knob mirrors the real server's pipelined worker
  // streams. In virtual time there is no completion->manager->schedule
  // latency to hide, so a deeper stream cannot help — it only forms tasks
  // *earlier*, before would-be joiners arrive, splitting batches. This is
  // exactly why SimEngineOptions defaults to depth 1 (legacy timeline,
  // asserted exactly by Figure5CellularBatchingTimeline) while the real
  // server defaults deeper. The knob must still complete every request at
  // any depth, and deeper streams can only increase the task count.
  const int lengths[8] = {2, 3, 3, 5, 5, 7, 3, 1};
  const double arrivals[8] = {0, 0, 0, 0, 1.5, 2.5, 2.5, 4.5};

  int64_t prev_tasks = 0;
  for (const int depth : {1, 2, 4}) {
    TinyLstmFixture fix;
    fix.registry.SetMaxBatch(fix.model.cell_type(), 4);
    const CostModel cost = UnitCostModel(fix.registry);
    SimEngineOptions options;
    options.num_workers = 2;
    options.pipeline_depth = depth;
    options.scheduler.max_tasks_to_submit = 1;
    SimEngine engine(&fix.registry, &cost, options);
    for (int i = 0; i < 8; ++i) {
      engine.SubmitAt(arrivals[i], fix.model.Unfold(lengths[i]));
    }
    engine.Run();
    ASSERT_EQ(engine.metrics().NumCompleted(), 8u) << "depth " << depth;
    const int64_t tasks = engine.scheduler().TotalTasksFormed();
    if (depth > 1) {
      EXPECT_GE(tasks, prev_tasks) << "depth " << depth;
    }
    prev_tasks = tasks;
  }
}

TEST(SimEngineTest, ThroughputUsesBothWorkers) {
  TinyLstmFixture fix;
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), CostCurve({{1, 100.0}}));
  SimEngineOptions options;
  options.num_workers = 2;
  options.scheduler.max_tasks_to_submit = 1;
  SimEngine engine(&fix.registry, &cost, options);
  // Two requests arriving at the same instant would be batched onto one
  // worker (batching wins); staggered arrivals exercise the second worker:
  // request 2 arrives while request 1's chain is pinned to worker 0.
  engine.SubmitAt(0.0, fix.model.Unfold(4));
  engine.SubmitAt(50.0, fix.model.Unfold(4));
  engine.Run();
  ASSERT_EQ(engine.metrics().NumCompleted(), 2u);
  std::map<RequestId, RequestRecord> by_id;
  for (const auto& r : engine.metrics().records()) {
    by_id[r.id] = r;
  }
  EXPECT_DOUBLE_EQ(by_id[1].completion_micros, 400.0);
  // Request 2 runs concurrently on worker 1 instead of queueing behind
  // request 1: it completes at 450, not 800.
  EXPECT_DOUBLE_EQ(by_id[2].completion_micros, 450.0);
  EXPECT_GT(engine.workers().TasksExecuted(0), 0);
  EXPECT_GT(engine.workers().TasksExecuted(1), 0);
}

TEST(SimEngineTest, TreeRequestCompletesThroughBothPhases) {
  TinyTreeLstmFixture fix;
  fix.registry.SetMaxBatch(fix.model.leaf_type(), 64);
  fix.registry.SetMaxBatch(fix.model.internal_type(), 64);
  const CostModel cost = UnitCostModel(fix.registry);
  SimEngine engine(&fix.registry, &cost);
  engine.SubmitAt(0.0, fix.model.Unfold(BinaryTree::Complete(16)));
  engine.Run();
  ASSERT_EQ(engine.metrics().NumCompleted(), 1u);
  // 1 leaf task + 4 internal-level tasks, 1us each.
  EXPECT_DOUBLE_EQ(engine.metrics().records()[0].completion_micros, 5.0);
}

TEST(SimEngineTest, Seq2SeqDecoderPrioritized) {
  TinySeq2SeqFixture fix;
  const CostModel cost = UnitCostModel(fix.registry);
  SimEngineOptions options;
  options.scheduler.max_tasks_to_submit = 1;
  SimEngine engine(&fix.registry, &cost, options);
  engine.SubmitAt(0.0, fix.model.Unfold(3, 3));
  engine.Run();
  ASSERT_EQ(engine.metrics().NumCompleted(), 1u);
  EXPECT_DOUBLE_EQ(engine.metrics().records()[0].completion_micros, 6.0);
}

TEST(SimEngineTest, SaturationBacklogGrows) {
  TinyLstmFixture fix;
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), CostCurve({{1, 100.0}}));
  fix.registry.SetMaxBatch(fix.model.cell_type(), 1);  // no batching possible
  SimEngine engine(&fix.registry, &cost);
  // Offered load 2x capacity: 10-step requests every 500us, each takes
  // 1000us of exclusive worker time.
  for (int i = 0; i < 20; ++i) {
    engine.SubmitAt(i * 500.0, fix.model.Unfold(10));
  }
  engine.Run(/*deadline_micros=*/10000.0);
  // At t=10ms the worker has executed at most 10ms/100us = 100 steps of
  // the 200 requested -> at most 10 of 20 requests completed.
  EXPECT_LE(engine.metrics().NumCompleted(), 10u);
  EXPECT_GT(engine.NumActiveRequests(), 0u);
}

// ---------- SLA-aware batch formation in virtual time ----------

// Flat cost curve (100us at any batch): per-item cost halves with every
// doubling, so the efficiency test always favours deferring a sub-max
// batch, and every launch instant computes to a round number.
CostModel FlatCostModel(const CellRegistry& registry) {
  CostModel model;
  for (CellTypeId t = 0; t < registry.NumTypes(); ++t) {
    model.SetCurve(t, CostCurve({{1, 100.0}, {1024, 100.0}}));
  }
  return model;
}

TEST(SimEngineTest, SlackDeferredBatchLaunchesExactlyAtBudgetEnd) {
  // Request 1 (no deadline, infinite slack) arrives at t=0 and is
  // deferred; request 2 joins at t=20. The starvation budget (50us past
  // first deferral) ends at exactly t=50: the batch of 2 launches there —
  // not an event earlier or later — and both complete at 50 + 100 = 150.
  // Greedy would have launched request 1 alone at t=0 (completing at 100)
  // and request 2 at t=100 (completing at 200).
  TinyLstmFixture fix;
  fix.registry.SetMaxBatch(fix.model.cell_type(), 4);
  const CostModel cost = FlatCostModel(fix.registry);
  SimEngineOptions options;
  options.batch_policy.slack_batching = true;
  options.batch_policy.max_delay_micros = 50.0;
  options.enable_tracing = true;
  SimEngine engine(&fix.registry, &cost, options);
  engine.SubmitAt(0.0, fix.model.Unfold(1));
  engine.SubmitAt(20.0, fix.model.Unfold(1));
  engine.Run();

  ASSERT_EQ(engine.metrics().NumCompleted(), 2u);
  std::map<RequestId, double> done;
  for (const RequestRecord& r : engine.metrics().records()) {
    done[r.id] = r.completion_micros;
  }
  EXPECT_DOUBLE_EQ(done[1], 150.0);
  EXPECT_DOUBLE_EQ(done[2], 150.0);
  EXPECT_EQ(engine.scheduler().TotalDelayedLaunches(), 1);
  EXPECT_DOUBLE_EQ(engine.scheduler().TotalBatchDelayMicros(), 50.0);
  EXPECT_EQ(engine.trace().Count(TraceEventKind::kBatchDelayed), 1);
}

TEST(SimEngineTest, SlackDeadlineDrivenLaunchInstantIsExact) {
  // One request, SLA deadline 150us, step cost 100us, height 1: the
  // computed launch instant is arrival + 150 - 1*100 = 50 — tighter than
  // the starvation budget (arrival + 500). The sim must launch at exactly
  // t=50 and complete at exactly the deadline, t=150.
  TinyLstmFixture fix;
  fix.registry.SetMaxBatch(fix.model.cell_type(), 4);
  const CostModel cost = FlatCostModel(fix.registry);
  SimEngineOptions options;
  options.batch_policy.slack_batching = true;
  options.batch_policy.max_delay_micros = 500.0;
  SimEngine engine(&fix.registry, &cost, options);
  engine.SubmitAt(0.0, fix.model.Unfold(1),
                  SubmitOptions{.deadline_micros = 150.0});
  engine.Run();

  ASSERT_EQ(engine.metrics().NumCompleted(), 1u);
  std::map<RequestId, double> done;
  for (const RequestRecord& r : engine.metrics().records()) {
    done[r.id] = r.completion_micros;
  }
  EXPECT_DOUBLE_EQ(done[1], 150.0);
  EXPECT_EQ(engine.metrics().NumDropped(), 0u);
  EXPECT_EQ(engine.scheduler().TotalDelayedLaunches(), 1);
  // Deferred from arrival (0) to launch (50).
  EXPECT_DOUBLE_EQ(engine.scheduler().TotalBatchDelayMicros(), 50.0);
}

TEST(SimEngineTest, SlackDeadlineAccountsForRemainingChainHeight) {
  // A 3-step chain with deadline 500: remaining critical path is 3 steps
  // of 100us, so the first launch happens at 500 - 300 = 200 and the chain
  // finishes exactly at its deadline. The later steps have zero slack and
  // launch back-to-back.
  TinyLstmFixture fix;
  fix.registry.SetMaxBatch(fix.model.cell_type(), 4);
  const CostModel cost = FlatCostModel(fix.registry);
  SimEngineOptions options;
  options.batch_policy.slack_batching = true;
  options.batch_policy.max_delay_micros = 5000.0;
  options.scheduler.max_tasks_to_submit = 1;
  SimEngine engine(&fix.registry, &cost, options);
  engine.SubmitAt(0.0, fix.model.Unfold(3),
                  SubmitOptions{.deadline_micros = 500.0});
  engine.Run();

  ASSERT_EQ(engine.metrics().NumCompleted(), 1u);
  EXPECT_DOUBLE_EQ(engine.metrics().records()[0].completion_micros, 500.0);
  EXPECT_EQ(engine.metrics().NumDropped(), 0u);
}

TEST(SimEngineTest, SlackOffAndZeroDelayReproduceGreedyTimeline) {
  // The bitwise-off guarantee in virtual time: the same workload run (a)
  // with the policy off and (b) with slack_batching on but max_delay 0
  // produces the identical greedy timeline, to the last decimal.
  const auto run_once = [](bool slack, double max_delay,
                           std::map<RequestId, double>* completions) {
    TinyLstmFixture fix;
    fix.registry.SetMaxBatch(fix.model.cell_type(), 4);
    const CostModel cost = FlatCostModel(fix.registry);
    SimEngineOptions options;
    options.batch_policy.slack_batching = slack;
    options.batch_policy.max_delay_micros = max_delay;
    options.scheduler.max_tasks_to_submit = 1;
    SimEngine engine(&fix.registry, &cost, options);
    const int lengths[6] = {2, 3, 1, 5, 4, 2};
    const double arrivals[6] = {0, 0, 50, 120, 120, 260};
    for (int i = 0; i < 6; ++i) {
      engine.SubmitAt(arrivals[i], fix.model.Unfold(lengths[i]));
    }
    engine.Run();
    EXPECT_EQ(engine.metrics().NumCompleted(), 6u);
    EXPECT_EQ(engine.scheduler().TotalDelayedLaunches(), 0);
    for (const RequestRecord& r : engine.metrics().records()) {
      (*completions)[r.id] = r.completion_micros;
    }
  };

  std::map<RequestId, double> off, zero_delay;
  run_once(false, 2000.0, &off);
  run_once(true, 0.0, &zero_delay);
  ASSERT_EQ(off.size(), 6u);
  ASSERT_EQ(zero_delay.size(), 6u);
  for (const auto& [id, t] : off) {
    EXPECT_DOUBLE_EQ(zero_delay.at(id), t) << "request " << id;
  }
}

TEST(SimEngineTest, MetricsThroughputWindow) {
  TinyLstmFixture fix;
  const CostModel cost = UnitCostModel(fix.registry);
  SimEngine engine(&fix.registry, &cost);
  for (int i = 0; i < 10; ++i) {
    engine.SubmitAt(i * 10.0, fix.model.Unfold(1));
  }
  engine.Run();
  EXPECT_EQ(engine.metrics().NumCompleted(), 10u);
  const double rps = engine.metrics().ThroughputRps(0.0, 100.0);
  EXPECT_NEAR(rps, 10.0 / 100e-6, 1.0);
}

}  // namespace
}  // namespace batchmaker
