// Tests for SyncEngine: real-compute end-to-end correctness. The key
// property is semantic transparency of cellular batching: results of
// batched multi-request execution must equal isolated sequential runs.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/sync_engine.h"
#include "src/graph/executor.h"
#include "src/runtime/cost_model.h"
#include "tests/test_models.h"

namespace batchmaker {
namespace {

// Sequentially executes a chain LSTM with the registry's executor (no
// batching, no scheduler) as the reference.
std::pair<Tensor, Tensor> ReferenceChain(const CellRegistry& registry, CellTypeId type,
                                         const std::vector<Tensor>& xs) {
  const CellExecutor& exec = registry.executor(type);
  Tensor h = Tensor::Zeros(Shape{1, 4});
  Tensor c = Tensor::Zeros(Shape{1, 4});
  for (const Tensor& x : xs) {
    auto out = exec.Execute({&x, &h, &c});
    h = std::move(out[0]);
    c = std::move(out[1]);
  }
  return {h, c};
}

std::vector<Tensor> MakeChainExternals(const std::vector<Tensor>& xs) {
  std::vector<Tensor> ext = xs;
  ext.push_back(ExternalZeroVecTensor(4));  // h0
  ext.push_back(ExternalZeroVecTensor(4));  // c0
  return ext;
}

TEST(SyncEngineTest, SingleChainMatchesSequentialReference) {
  TinyLstmFixture fix;
  Rng data_rng(100);
  std::vector<Tensor> xs;
  for (int t = 0; t < 6; ++t) {
    xs.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng));
  }
  const auto [ref_h, ref_c] = ReferenceChain(fix.registry, fix.model.cell_type(), xs);

  SyncEngine engine(&fix.registry);
  const CellGraph graph = fix.model.Unfold(6);
  const RequestId id = engine.Submit(CellGraph(graph), MakeChainExternals(xs),
                                     {ValueRef::Output(5, 0), ValueRef::Output(5, 1)});
  engine.RunToCompletion();
  const auto outputs = engine.TakeResponse(id).outputs;
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_TRUE(outputs[0].AllClose(ref_h, 1e-5f));
  EXPECT_TRUE(outputs[1].AllClose(ref_c, 1e-5f));
}

TEST(SyncEngineTest, BatchedRequestsMatchIsolatedRuns) {
  TinyLstmFixture fix;
  Rng data_rng(200);

  // Three requests of different lengths submitted together: the scheduler
  // batches their steps; results must match isolated sequential execution.
  const int lengths[3] = {2, 5, 3};
  std::vector<std::vector<Tensor>> all_xs;
  for (int len : lengths) {
    std::vector<Tensor> xs;
    for (int t = 0; t < len; ++t) {
      xs.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng));
    }
    all_xs.push_back(std::move(xs));
  }

  SyncEngine engine(&fix.registry);
  std::vector<RequestId> ids;
  for (int i = 0; i < 3; ++i) {
    const int last = lengths[i] - 1;
    ids.push_back(engine.Submit(fix.model.Unfold(lengths[i]),
                                MakeChainExternals(all_xs[static_cast<size_t>(i)]),
                                {ValueRef::Output(last, 0)}));
  }
  engine.RunToCompletion();

  // Batching happened: fewer tasks than total steps.
  EXPECT_LT(engine.TasksExecuted(), 2 + 5 + 3);
  EXPECT_EQ(engine.TaskBatchSizes().front(), 3);  // first step fully batched

  for (int i = 0; i < 3; ++i) {
    const auto [ref_h, ref_c] =
        ReferenceChain(fix.registry, fix.model.cell_type(), all_xs[static_cast<size_t>(i)]);
    const auto outputs = engine.TakeResponse(ids[static_cast<size_t>(i)]).outputs;
    EXPECT_TRUE(outputs[0].AllClose(ref_h, 1e-5f)) << "request " << i;
  }
}

TEST(SyncEngineTest, TreeLstmMatchesRecursiveReference) {
  TinyTreeLstmFixture fix;
  Rng tree_rng(300);
  const BinaryTree tree = BinaryTree::RandomParse(7, 32, &tree_rng);
  const CellGraph graph = fix.model.Unfold(tree);

  // Reference: direct recursive evaluation.
  const CellExecutor& leaf_exec = fix.registry.executor(fix.model.leaf_type());
  const CellExecutor& internal_exec = fix.registry.executor(fix.model.internal_type());
  std::function<std::pair<Tensor, Tensor>(int)> eval = [&](int id) {
    const auto& n = tree.nodes[static_cast<size_t>(id)];
    if (n.is_leaf()) {
      const Tensor token = ExternalTokenTensor(n.token);
      auto out = leaf_exec.Execute({&token});
      return std::make_pair(out[0], out[1]);
    }
    const auto [hl, cl] = eval(n.left);
    const auto [hr, cr] = eval(n.right);
    auto out = internal_exec.Execute({&hl, &cl, &hr, &cr});
    return std::make_pair(out[0], out[1]);
  };
  const auto [ref_h, ref_c] = eval(tree.root);

  // Engine run.
  std::vector<Tensor> externals;
  for (const auto& n : tree.nodes) {
    if (n.is_leaf()) {
      externals.push_back(ExternalTokenTensor(n.token));
    }
  }
  SyncEngine engine(&fix.registry);
  const int root_node = graph.NumNodes() - 1;  // root is added last
  const RequestId id = engine.Submit(CellGraph(graph), std::move(externals),
                                     {ValueRef::Output(root_node, 0)});
  engine.RunToCompletion();
  const auto outputs = engine.TakeResponse(id).outputs;
  EXPECT_TRUE(outputs[0].AllClose(ref_h, 1e-5f));
}

TEST(SyncEngineTest, Seq2SeqFeedPreviousDecodesGreedily) {
  TinySeq2SeqFixture fix;
  const CellGraph graph = fix.model.Unfold(3, 4);

  // Reference: run encoder then greedy decode manually.
  const CellExecutor& enc = fix.registry.executor(fix.model.encoder_type());
  const CellExecutor& dec = fix.registry.executor(fix.model.decoder_type());
  const int32_t src[3] = {5, 9, 11};
  Tensor h = Tensor::Zeros(Shape{1, 4});
  Tensor c = Tensor::Zeros(Shape{1, 4});
  for (int32_t tok : src) {
    const Tensor t = ExternalTokenTensor(tok);
    auto out = enc.Execute({&t, &h, &c});
    h = std::move(out[0]);
    c = std::move(out[1]);
  }
  Tensor token = ExternalTokenTensor(0);  // <go>
  std::vector<int32_t> ref_tokens;
  for (int step = 0; step < 4; ++step) {
    auto out = dec.Execute({&token, &h, &c});
    h = std::move(out[0]);
    c = std::move(out[1]);
    token = std::move(out[2]);
    ref_tokens.push_back(token.IntAt(0, 0));
  }

  // Engine run: externals are src tokens, <go>, h0, c0.
  std::vector<Tensor> externals;
  for (int32_t tok : src) {
    externals.push_back(ExternalTokenTensor(tok));
  }
  externals.push_back(ExternalTokenTensor(0));
  externals.push_back(ExternalZeroVecTensor(4));
  externals.push_back(ExternalZeroVecTensor(4));

  std::vector<ValueRef> wanted;
  for (int i = 0; i < 4; ++i) {
    wanted.push_back(ValueRef::Output(3 + i, 2));  // each decoder token
  }
  SyncEngine engine(&fix.registry);
  const RequestId id = engine.Submit(CellGraph(graph), std::move(externals), wanted);
  engine.RunToCompletion();
  const auto outputs = engine.TakeResponse(id).outputs;
  ASSERT_EQ(outputs.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(outputs[static_cast<size_t>(i)].IntAt(0, 0),
              ref_tokens[static_cast<size_t>(i)])
        << "decoder step " << i;
  }
}

TEST(SyncEngineTest, ManyMixedRequestsAllComplete) {
  TinyLstmFixture fix;
  Rng data_rng(400);
  SyncEngine engine(&fix.registry);
  std::vector<RequestId> ids;
  for (int i = 0; i < 20; ++i) {
    const int len = 1 + static_cast<int>(data_rng.NextBelow(8));
    std::vector<Tensor> xs;
    for (int t = 0; t < len; ++t) {
      xs.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng));
    }
    ids.push_back(engine.Submit(fix.model.Unfold(len), MakeChainExternals(xs),
                                {ValueRef::Output(len - 1, 0)}));
  }
  engine.RunToCompletion();
  for (const RequestId id : ids) {
    const auto outputs = engine.TakeResponse(id).outputs;
    EXPECT_EQ(outputs.size(), 1u);
  }
}

TEST(SyncEngineDeathTest, TakeResponseBeforeCompletionAborts) {
  TinyLstmFixture fix;
  SyncEngine engine(&fix.registry);
  EXPECT_DEATH(engine.TakeResponse(99), "not completed");
}

// --- Stall recovery ---------------------------------------------------------
// Regression for the "scheduler stalled with active requests" BM_CHECK that
// used to abort the process: a stalled scheduler now fails the stuck
// requests with kFailed (plus a logged diagnostic of the nodes that never
// became ready) and RunToCompletion returns normally.

TEST(SyncEngineTest, StalledSchedulerFailsRequestsInsteadOfAborting) {
  TinyLstmFixture fix;
  SyncEngine engine(&fix.registry);
  // slack_batching defers a sub-maximal batch while doubling it still cuts
  // per-item cost. Under this engine's clock, "now" is pinned at 0, so the
  // starvation budget never elapses and the flat UnitCostCurve (per-item
  // cost halves with every doubling) defers the type forever: Schedule
  // yields no work while the requests stay active — a guaranteed stall.
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), UnitCostCurve());
  BatchPolicyOptions policy;
  policy.slack_batching = true;
  engine.set_batch_policy(policy, &cost);

  Rng data_rng(500);
  std::vector<RequestId> ids;
  for (int i = 0; i < 3; ++i) {
    std::vector<Tensor> xs = {Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng)};
    ids.push_back(engine.Submit(fix.model.Unfold(1), MakeChainExternals(xs),
                                {ValueRef::Output(0, 0)}));
  }
  engine.RunToCompletion();  // must return (previously: BM_CHECK abort)
  EXPECT_EQ(engine.TasksExecuted(), 0);
  for (const RequestId id : ids) {
    const Response res = engine.TakeResponse(id);
    EXPECT_EQ(res.status, RequestStatus::kFailed);
    EXPECT_TRUE(res.outputs.empty());
  }
}

TEST(SyncEngineTest, SlackPolicyWithZeroDelayIsGreedyAndCompletes) {
  // max_delay_micros = 0 reproduces the greedy policy byte-for-byte even
  // with slack_batching set: no deferral, no stall, results identical.
  TinyLstmFixture fix;
  SyncEngine engine(&fix.registry);
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), UnitCostCurve());
  BatchPolicyOptions policy;
  policy.slack_batching = true;
  policy.max_delay_micros = 0.0;
  engine.set_batch_policy(policy, &cost);

  Rng data_rng(501);
  std::vector<Tensor> xs = {Tensor::RandomUniform(Shape{1, 4}, 1.0f, &data_rng)};
  const RequestId id = engine.Submit(fix.model.Unfold(1), MakeChainExternals(xs),
                                     {ValueRef::Output(0, 0)});
  engine.RunToCompletion();
  const Response res = engine.TakeResponse(id);
  EXPECT_EQ(res.status, RequestStatus::kOk);
  ASSERT_EQ(res.outputs.size(), 1u);
}

}  // namespace
}  // namespace batchmaker
