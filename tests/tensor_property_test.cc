// Parameterized property sweeps over the tensor substrate: every op is
// checked against a naive scalar reference across a grid of shapes, and
// batched execution is checked row-independent across batch sizes.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/graph/executor.h"
#include "src/nn/lstm.h"
#include "src/tensor/gemm.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace batchmaker {
namespace {

// ---------- GEMM across a shape grid ----------

class GemmShapeTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 10007 + k * 101 + n));
  const Tensor a = Tensor::RandomUniform(Shape{m, k}, 1.0f, &rng);
  const Tensor b = Tensor::RandomUniform(Shape{k, n}, 1.0f, &rng);
  const Tensor c = MatMul(a, b);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc += a.At(i, p) * b.At(p, j);
      }
      ASSERT_NEAR(c.At(i, j), acc, 1e-3f) << "(" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 1),
                      std::make_tuple(2, 3, 5), std::make_tuple(8, 8, 8),
                      std::make_tuple(17, 31, 13), std::make_tuple(63, 65, 64),
                      std::make_tuple(64, 257, 3), std::make_tuple(5, 300, 40),
                      std::make_tuple(65, 64, 66)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "k" +
             std::to_string(std::get<1>(info.param)) + "n" +
             std::to_string(std::get<2>(info.param));
    });

// ---------- Elementwise ops across shapes ----------

class ElementwiseShapeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ElementwiseShapeTest, AllOpsMatchScalarReference) {
  const auto [rows, cols] = GetParam();
  Rng rng(static_cast<uint64_t>(rows * 31 + cols));
  const Tensor a = Tensor::RandomUniform(Shape{rows, cols}, 2.0f, &rng);
  const Tensor b = Tensor::RandomUniform(Shape{rows, cols}, 2.0f, &rng);

  const Tensor add = Add(a, b);
  const Tensor sub = Sub(a, b);
  const Tensor mul = Mul(a, b);
  const Tensor sig = Sigmoid(a);
  const Tensor tanh_t = Tanh(a);
  const Tensor relu = Relu(a);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const float x = a.At(r, c);
      const float y = b.At(r, c);
      ASSERT_FLOAT_EQ(add.At(r, c), x + y);
      ASSERT_FLOAT_EQ(sub.At(r, c), x - y);
      ASSERT_FLOAT_EQ(mul.At(r, c), x * y);
      ASSERT_NEAR(sig.At(r, c), 1.0f / (1.0f + std::exp(-x)), 1e-6f);
      ASSERT_NEAR(tanh_t.At(r, c), std::tanh(x), 1e-6f);
      ASSERT_FLOAT_EQ(relu.At(r, c), x > 0 ? x : 0.0f);
    }
  }
}

TEST_P(ElementwiseShapeTest, SliceConcatInverse) {
  const auto [rows, cols] = GetParam();
  if (cols < 2) {
    GTEST_SKIP();
  }
  Rng rng(static_cast<uint64_t>(rows * 97 + cols));
  const Tensor a = Tensor::RandomUniform(Shape{rows, cols}, 1.0f, &rng);
  const int split = cols / 2;
  const Tensor left = SliceCols(a, 0, split);
  const Tensor right = SliceCols(a, split, cols);
  EXPECT_TRUE(ConcatCols({&left, &right}).ElementsEqual(a));
}

INSTANTIATE_TEST_SUITE_P(Shapes, ElementwiseShapeTest,
                         ::testing::Values(std::make_pair(1, 1), std::make_pair(1, 64),
                                           std::make_pair(64, 1), std::make_pair(7, 13),
                                           std::make_pair(32, 100)),
                         [](const ::testing::TestParamInfo<std::pair<int, int>>& info) {
                           return "r" + std::to_string(info.param.first) + "c" +
                                  std::to_string(info.param.second);
                         });

// ---------- Batched cell execution is row-independent ----------

class BatchIndependenceTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchIndependenceTest, LstmBatchRowsEqualSingleRows) {
  const int batch = GetParam();
  Rng rng(77);
  const LstmSpec spec{.input_dim = 6, .hidden = 5};
  const auto def = BuildLstmCell(spec, &rng);
  const CellExecutor exec(def.get());

  Rng data_rng(static_cast<uint64_t>(batch) * 13 + 1);
  const Tensor x = Tensor::RandomUniform(Shape{batch, 6}, 1.0f, &data_rng);
  const Tensor h = Tensor::RandomUniform(Shape{batch, 5}, 1.0f, &data_rng);
  const Tensor c = Tensor::RandomUniform(Shape{batch, 5}, 1.0f, &data_rng);
  const auto batched = exec.Execute({&x, &h, &c});

  for (int row = 0; row < batch; ++row) {
    const Tensor xr = ExtractRow(x, row);
    const Tensor hr = ExtractRow(h, row);
    const Tensor cr = ExtractRow(c, row);
    const auto single = exec.Execute({&xr, &hr, &cr});
    for (int d = 0; d < 5; ++d) {
      ASSERT_NEAR(batched[0].At(row, d), single[0].At(0, d), 1e-5f)
          << "batch " << batch << " row " << row;
      ASSERT_NEAR(batched[1].At(row, d), single[1].At(0, d), 1e-5f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchIndependenceTest,
                         ::testing::Values(1, 2, 3, 8, 17, 64));

// ---------- Softmax / argmax consistency ----------

class SoftmaxArgmaxTest : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxArgmaxTest, ArgmaxInvariantUnderSoftmax) {
  const int cols = GetParam();
  Rng rng(static_cast<uint64_t>(cols) + 5);
  const Tensor a = Tensor::RandomUniform(Shape{8, cols}, 4.0f, &rng);
  const Tensor direct = ArgmaxRows(a);
  const Tensor via_softmax = ArgmaxRows(Softmax(a));
  EXPECT_TRUE(direct.ElementsEqual(via_softmax));
}

INSTANTIATE_TEST_SUITE_P(Widths, SoftmaxArgmaxTest, ::testing::Values(1, 2, 10, 100, 1000));

}  // namespace
}  // namespace batchmaker
