// Tests for src/tensor: shapes, tensors, GEMM, elementwise and structural
// ops, and the gather/scatter helpers used for batch assembly.

#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/gemm.h"
#include "src/tensor/ops.h"
#include "src/tensor/shape.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace batchmaker {
namespace {

// ---------- Shape ----------

TEST(ShapeTest, BasicProperties) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.Rank(), 3);
  EXPECT_EQ(s.Dim(1), 3);
  EXPECT_EQ(s.NumElements(), 24);
}

TEST(ShapeTest, RankZeroHasOneElement) {
  const Shape s{};
  EXPECT_EQ(s.Rank(), 0);
  EXPECT_EQ(s.NumElements(), 1);
}

TEST(ShapeTest, WithDim) {
  const Shape s{2, 3};
  const Shape t = s.WithDim(0, 7);
  EXPECT_EQ(t.Dim(0), 7);
  EXPECT_EQ(t.Dim(1), 3);
  EXPECT_EQ(s.Dim(0), 2);  // original untouched
}

TEST(ShapeTest, RowShapeAndRowElements) {
  const Shape s{5, 3, 2};
  EXPECT_EQ(s.RowShape(), (Shape{3, 2}));
  EXPECT_EQ(s.RowElements(), 6);
}

TEST(ShapeTest, EqualityAndToString) {
  EXPECT_EQ((Shape{1, 2}), (Shape{1, 2}));
  EXPECT_NE((Shape{1, 2}), (Shape{2, 1}));
  EXPECT_EQ((Shape{1, 2}).ToString(), "[1,2]");
}

// ---------- Tensor ----------

TEST(TensorTest, ZerosInitialized) {
  const Tensor t = Tensor::Zeros(Shape{2, 3});
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    EXPECT_EQ(t.f32()[i], 0.0f);
  }
}

TEST(TensorTest, FromVectorAndAt) {
  const Tensor t = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.At(0, 0), 1.0f);
  EXPECT_EQ(t.At(1, 0), 3.0f);
  EXPECT_EQ(t.At(1, 1), 4.0f);
}

TEST(TensorTest, IntTensor) {
  const Tensor t = Tensor::FromIntVector(Shape{2, 1}, {5, -3});
  EXPECT_EQ(t.dtype(), DType::kI32);
  EXPECT_EQ(t.IntAt(0, 0), 5);
  EXPECT_EQ(t.IntAt(1, 0), -3);
}

TEST(TensorTest, RandomUniformWithinLimit) {
  Rng rng(1);
  const Tensor t = Tensor::RandomUniform(Shape{100}, 0.5f, &rng);
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    EXPECT_LE(std::fabs(t.f32()[i]), 0.5f);
  }
}

TEST(TensorTest, ElementsEqualAndAllClose) {
  const Tensor a = Tensor::FromVector(Shape{2}, {1.0f, 2.0f});
  Tensor b = Tensor::FromVector(Shape{2}, {1.0f, 2.0f});
  EXPECT_TRUE(a.ElementsEqual(b));
  b.f32()[0] += 1e-6f;
  EXPECT_FALSE(a.ElementsEqual(b));
  EXPECT_TRUE(a.AllClose(b, 1e-5f));
  EXPECT_FALSE(a.AllClose(b, 1e-8f));
}

TEST(TensorTest, ContentHashSensitivity) {
  Rng rng(1);
  const Tensor a = Tensor::RandomUniform(Shape{8, 8}, 1.0f, &rng);
  Tensor b = a;
  EXPECT_EQ(a.ContentHash(), b.ContentHash());
  b.f32()[3] += 0.125f;
  EXPECT_NE(a.ContentHash(), b.ContentHash());
  // Shape participates in the hash.
  const Tensor c = Tensor::Zeros(Shape{4});
  const Tensor d = Tensor::Zeros(Shape{2, 2});
  EXPECT_NE(c.ContentHash(), d.ContentHash());
}

// ---------- GEMM ----------

TEST(GemmTest, SmallKnownProduct) {
  const Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::FromVector(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
}

TEST(GemmTest, IdentityIsNoop) {
  Rng rng(2);
  const Tensor a = Tensor::RandomUniform(Shape{5, 5}, 1.0f, &rng);
  Tensor eye = Tensor::Zeros(Shape{5, 5});
  for (int i = 0; i < 5; ++i) {
    eye.At(i, i) = 1.0f;
  }
  EXPECT_TRUE(MatMul(a, eye).AllClose(a));
}

TEST(GemmTest, MatchesNaiveReferenceAcrossSizes) {
  Rng rng(3);
  for (const auto& [m, k, n] : {std::tuple<int, int, int>{1, 1, 1},
                               {3, 5, 7},
                               {64, 64, 64},
                               {65, 300, 17},
                               {128, 257, 40}}) {
    const Tensor a = Tensor::RandomUniform(Shape{m, k}, 1.0f, &rng);
    const Tensor b = Tensor::RandomUniform(Shape{k, n}, 1.0f, &rng);
    const Tensor c = MatMul(a, b);
    // Naive reference.
    for (int i = 0; i < m; i += std::max(1, m / 5)) {
      for (int j = 0; j < n; j += std::max(1, n / 5)) {
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) {
          acc += a.At(i, p) * b.At(p, j);
        }
        EXPECT_NEAR(c.At(i, j), acc, 1e-3f) << "m=" << m << " k=" << k << " n=" << n;
      }
    }
  }
}

TEST(GemmTest, AccumulateAddsIntoC) {
  const Tensor a = Tensor::FromVector(Shape{1, 2}, {1, 1});
  const Tensor b = Tensor::FromVector(Shape{2, 1}, {2, 3});
  Tensor c = Tensor::FromVector(Shape{1, 1}, {10});
  GemmAccumulateRaw(a.f32(), b.f32(), c.f32(), 1, 2, 1);
  EXPECT_FLOAT_EQ(c.At(0, 0), 15.0f);
}

// ---------- Elementwise ops ----------

TEST(OpsTest, AddSubMul) {
  const Tensor a = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  const Tensor b = Tensor::FromVector(Shape{2, 2}, {5, 6, 7, 8});
  EXPECT_FLOAT_EQ(Add(a, b).At(1, 1), 12.0f);
  EXPECT_FLOAT_EQ(Sub(b, a).At(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(Mul(a, b).At(1, 0), 21.0f);
}

TEST(OpsTest, AddBiasBroadcasts) {
  const Tensor a = Tensor::FromVector(Shape{2, 3}, {0, 0, 0, 1, 1, 1});
  const Tensor bias = Tensor::FromVector(Shape{3}, {10, 20, 30});
  const Tensor out = AddBias(a, bias);
  EXPECT_FLOAT_EQ(out.At(0, 2), 30.0f);
  EXPECT_FLOAT_EQ(out.At(1, 0), 11.0f);
}

TEST(OpsTest, SigmoidKnownValues) {
  const Tensor a = Tensor::FromVector(Shape{1, 3}, {0.0f, 100.0f, -100.0f});
  const Tensor out = Sigmoid(a);
  EXPECT_NEAR(out.At(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(out.At(0, 1), 1.0f, 1e-6f);
  EXPECT_NEAR(out.At(0, 2), 0.0f, 1e-6f);
}

TEST(OpsTest, TanhAndRelu) {
  const Tensor a = Tensor::FromVector(Shape{1, 2}, {-1.0f, 2.0f});
  EXPECT_NEAR(Tanh(a).At(0, 0), std::tanh(-1.0f), 1e-6f);
  EXPECT_FLOAT_EQ(Relu(a).At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(Relu(a).At(0, 1), 2.0f);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(4);
  const Tensor a = Tensor::RandomUniform(Shape{3, 10}, 5.0f, &rng);
  const Tensor out = Softmax(a);
  for (int r = 0; r < 3; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 10; ++c) {
      EXPECT_GE(out.At(r, c), 0.0f);
      sum += out.At(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(OpsTest, SoftmaxStableForLargeLogits) {
  const Tensor a = Tensor::FromVector(Shape{1, 2}, {1000.0f, 1001.0f});
  const Tensor out = Softmax(a);
  EXPECT_FALSE(std::isnan(out.At(0, 0)));
  EXPECT_GT(out.At(0, 1), out.At(0, 0));
}

// ---------- Structural ops ----------

TEST(OpsTest, ConcatCols) {
  const Tensor a = Tensor::FromVector(Shape{2, 1}, {1, 2});
  const Tensor b = Tensor::FromVector(Shape{2, 2}, {3, 4, 5, 6});
  const Tensor out = ConcatCols({&a, &b});
  EXPECT_EQ(out.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(out.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.At(0, 2), 4.0f);
  EXPECT_FLOAT_EQ(out.At(1, 1), 5.0f);
}

TEST(OpsTest, SliceCols) {
  const Tensor a = Tensor::FromVector(Shape{2, 4}, {0, 1, 2, 3, 4, 5, 6, 7});
  const Tensor out = SliceCols(a, 1, 3);
  EXPECT_EQ(out.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(out.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.At(1, 1), 6.0f);
}

TEST(OpsTest, SliceThenConcatRoundTrips) {
  Rng rng(5);
  const Tensor a = Tensor::RandomUniform(Shape{3, 6}, 1.0f, &rng);
  const Tensor left = SliceCols(a, 0, 2);
  const Tensor right = SliceCols(a, 2, 6);
  EXPECT_TRUE(ConcatCols({&left, &right}).ElementsEqual(a));
}

TEST(OpsTest, EmbeddingLookup) {
  const Tensor table = Tensor::FromVector(Shape{3, 2}, {0, 1, 10, 11, 20, 21});
  const Tensor ids = Tensor::FromIntVector(Shape{2, 1}, {2, 0});
  const Tensor out = EmbeddingLookup(table, ids);
  EXPECT_EQ(out.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(out.At(0, 0), 20.0f);
  EXPECT_FLOAT_EQ(out.At(1, 1), 1.0f);
}

TEST(OpsTest, ArgmaxRows) {
  const Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 9, 2, 8, 3, 4});
  const Tensor out = ArgmaxRows(a);
  EXPECT_EQ(out.dtype(), DType::kI32);
  EXPECT_EQ(out.IntAt(0, 0), 1);
  EXPECT_EQ(out.IntAt(1, 0), 0);
}

TEST(OpsTest, ArgmaxTiesPickFirst) {
  const Tensor a = Tensor::FromVector(Shape{1, 3}, {5, 5, 5});
  EXPECT_EQ(ArgmaxRows(a).IntAt(0, 0), 0);
}

// ---------- Gather / scatter ----------

TEST(OpsTest, GatherRowsFromSingleRowTensors) {
  const Tensor a = Tensor::FromVector(Shape{1, 2}, {1, 2});
  const Tensor b = Tensor::FromVector(Shape{1, 2}, {3, 4});
  const Tensor batch = GatherRows({&a, &b}, {0, 0});
  EXPECT_EQ(batch.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(batch.At(1, 0), 3.0f);
}

TEST(OpsTest, GatherRowsSelectsRows) {
  const Tensor a = Tensor::FromVector(Shape{3, 1}, {10, 20, 30});
  const Tensor batch = GatherRows({&a, &a, &a}, {2, 0, 1});
  EXPECT_FLOAT_EQ(batch.At(0, 0), 30.0f);
  EXPECT_FLOAT_EQ(batch.At(1, 0), 10.0f);
  EXPECT_FLOAT_EQ(batch.At(2, 0), 20.0f);
}

TEST(OpsTest, GatherRowsIntDtype) {
  const Tensor a = Tensor::FromIntVector(Shape{1, 1}, {7});
  const Tensor b = Tensor::FromIntVector(Shape{1, 1}, {9});
  const Tensor batch = GatherRows({&a, &b}, {0, 0});
  EXPECT_EQ(batch.dtype(), DType::kI32);
  EXPECT_EQ(batch.IntAt(1, 0), 9);
}

TEST(OpsTest, ScatterRowWritesDestination) {
  const Tensor batch = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  Tensor dst = Tensor::Zeros(Shape{1, 2});
  ScatterRow(batch, 1, &dst, 0);
  EXPECT_FLOAT_EQ(dst.At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(dst.At(0, 1), 4.0f);
}

TEST(OpsTest, ExtractRowShape) {
  const Tensor batch = Tensor::FromVector(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  const Tensor row = ExtractRow(batch, 2);
  EXPECT_EQ(row.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(row.At(0, 1), 6.0f);
}

TEST(OpsTest, GatherScatterRoundTrip) {
  Rng rng(6);
  std::vector<Tensor> rows;
  std::vector<const Tensor*> ptrs;
  for (int i = 0; i < 5; ++i) {
    rows.push_back(Tensor::RandomUniform(Shape{1, 4}, 1.0f, &rng));
  }
  for (const Tensor& t : rows) {
    ptrs.push_back(&t);
  }
  const Tensor batch = GatherRows(ptrs, {0, 0, 0, 0, 0});
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ExtractRow(batch, i).ElementsEqual(rows[static_cast<size_t>(i)]));
  }
}

}  // namespace
}  // namespace batchmaker
