// Shared fixtures for core tests: tiny registered models whose scheduling
// structure matches the paper's applications but whose tensors are small.

#ifndef TESTS_TEST_MODELS_H_
#define TESTS_TEST_MODELS_H_

#include <memory>

#include "src/graph/cell_registry.h"
#include "src/nn/lstm.h"
#include "src/nn/seq2seq.h"
#include "src/nn/tree_lstm.h"
#include "src/util/rng.h"

namespace batchmaker {

struct TinyLstmFixture {
  TinyLstmFixture()
      : rng(1234), model(&registry, LstmSpec{.input_dim = 4, .hidden = 4}, &rng) {}

  CellRegistry registry;
  Rng rng;
  LstmModel model;
};

struct TinySeq2SeqFixture {
  TinySeq2SeqFixture()
      : rng(5678),
        model(&registry, Seq2SeqSpec{.vocab = 32, .embed_dim = 4, .hidden = 4}, &rng) {}

  CellRegistry registry;
  Rng rng;
  Seq2SeqModel model;
};

struct TinyTreeLstmFixture {
  TinyTreeLstmFixture()
      : rng(9012),
        model(&registry, TreeLstmSpec{.vocab = 32, .embed_dim = 4, .hidden = 4}, &rng) {}

  CellRegistry registry;
  Rng rng;
  TreeLstmModel model;
};

}  // namespace batchmaker

#endif  // TESTS_TEST_MODELS_H_
