#include "src/util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace batchmaker {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.Run(257, [&](int64_t i) { hits[static_cast<size_t>(i)].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int64_t> order;
  pool.Run(5, [&](int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, StaticPartitionIsStrided) {
  // Thread t owns indices congruent to t mod T: with disjoint per-index
  // outputs the result is independent of scheduling, which is the
  // determinism contract the GEMM relies on.
  ThreadPool pool(3);
  std::vector<int64_t> out(30, -1);
  pool.Run(30, [&](int64_t i) { out[static_cast<size_t>(i)] = i * i; });
  for (int64_t i = 0; i < 30; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i * i);
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyRuns) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  for (int round = 0; round < 100; ++round) {
    pool.Run(64, [&](int64_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 100 * (64 * 63 / 2));
}

TEST(ThreadPoolTest, ZeroAndNegativeItemsAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.Run(0, [&](int64_t) { ++calls; });
  pool.Run(-3, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, PropagatesExceptionFromCallerShard) {
  ThreadPool pool(2);
  // Index 0 runs on the calling thread.
  EXPECT_THROW(pool.Run(2,
                        [&](int64_t i) {
                          if (i == 0) {
                            throw std::runtime_error("caller shard");
                          }
                        }),
               std::runtime_error);
}

TEST(ThreadPoolTest, PropagatesExceptionFromWorkerShard) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.Run(8, [&](int64_t i) {
      ran.fetch_add(1);
      if (i == 3) {  // 3 mod 4 -> worker thread 3
        throw std::runtime_error("worker shard");
      }
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker shard");
  }
  // The throwing thread abandons its own remaining index (7); the other
  // three threads finish their full index sets.
  EXPECT_EQ(ran.load(), 7);
  // The pool stays usable after an exception.
  std::atomic<int> ok{0};
  pool.Run(8, [&](int64_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPoolTest, RejectsNestedSubmitToSamePool) {
  ThreadPool pool(2);
  std::atomic<int> nested_rejections{0};
  pool.Run(2, [&](int64_t) {
    try {
      pool.Run(2, [](int64_t) {});
    } catch (const std::logic_error&) {
      nested_rejections.fetch_add(1);
    }
  });
  EXPECT_EQ(nested_rejections.load(), 2);
}

TEST(ThreadPoolTest, NestedSubmitToDistinctPoolIsAllowed) {
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> count{0};
  // A pool accepts one submitter at a time, so the two outer shards take
  // turns submitting to the (distinct) inner pool.
  std::mutex inner_mu;
  outer.Run(2, [&](int64_t) {
    std::lock_guard<std::mutex> lock(inner_mu);
    inner.Run(3, [&](int64_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 6);
}

TEST(ThreadPoolStressTest, ConcurrentPoolsHammerDisjointBuffers) {
  // TSan target: two independent pools forked/joined from two owner threads,
  // each writing its own buffer through many epochs.
  constexpr int kRounds = 200;
  constexpr int64_t kItems = 128;
  auto owner = [&](std::vector<int64_t>* buf) {
    ThreadPool pool(4);
    for (int round = 0; round < kRounds; ++round) {
      pool.Run(kItems, [&](int64_t i) { (*buf)[static_cast<size_t>(i)] += i; });
    }
  };
  std::vector<int64_t> buf_a(kItems, 0), buf_b(kItems, 0);
  std::thread ta(owner, &buf_a);
  std::thread tb(owner, &buf_b);
  ta.join();
  tb.join();
  for (int64_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(buf_a[static_cast<size_t>(i)], kRounds * i);
    EXPECT_EQ(buf_b[static_cast<size_t>(i)], kRounds * i);
  }
}

}  // namespace
}  // namespace batchmaker
