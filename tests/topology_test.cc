// Tests for NUMA topology discovery and placement helpers (src/util/
// topology.h) against checked-in fake sysfs trees (tests/testdata/sysfs_*),
// so a single-node CI host still exercises every multi-node code path.

#include "src/util/topology.h"

#include <gtest/gtest.h>

#ifdef __linux__
#include <sched.h>
#endif

#include <string>
#include <thread>
#include <vector>

namespace batchmaker {
namespace {

std::string TestDataPath(const std::string& tree) {
  return std::string(BM_TESTDATA_DIR) + "/" + tree;
}

TEST(ParseCpuListTest, RangesSinglesAndMixed) {
  EXPECT_EQ(ParseCpuList("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(ParseCpuList("5"), (std::vector<int>{5}));
  EXPECT_EQ(ParseCpuList("0-3,8,10-11"), (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
}

TEST(ParseCpuListTest, WhitespaceAndNewlines) {
  EXPECT_EQ(ParseCpuList(" 0-1 , 4 \n"), (std::vector<int>{0, 1, 4}));
}

TEST(ParseCpuListTest, EmptyAndMalformed) {
  EXPECT_TRUE(ParseCpuList("").empty());
  EXPECT_TRUE(ParseCpuList("\n").empty());
  // Malformed components are skipped, not fatal.
  EXPECT_EQ(ParseCpuList("0,x,2"), (std::vector<int>{0, 2}));
  EXPECT_EQ(ParseCpuList("3-1,5"), (std::vector<int>{5}));
}

TEST(ParseCpuListTest, DeduplicatesOverlaps) {
  EXPECT_EQ(ParseCpuList("0-2,1-3"), (std::vector<int>{0, 1, 2, 3}));
}

TEST(NumaPolicyTest, NamesRoundTrip) {
  for (const NumaPolicy policy :
       {NumaPolicy::kNone, NumaPolicy::kPin, NumaPolicy::kPinReplicate}) {
    NumaPolicy parsed;
    ASSERT_TRUE(ParseNumaPolicy(NumaPolicyName(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
  NumaPolicy parsed;
  EXPECT_FALSE(ParseNumaPolicy("interleave", &parsed));
  EXPECT_FALSE(ParseNumaPolicy("", &parsed));
}

TEST(DiscoverTopologyTest, SingleNodeTree) {
  const Topology topo = DiscoverTopology(TestDataPath("sysfs_1node"));
  EXPECT_TRUE(topo.from_sysfs);
  ASSERT_EQ(topo.nodes.size(), 1u);
  EXPECT_EQ(topo.nodes[0].id, 0);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(topo.num_cpus, 4);
}

TEST(DiscoverTopologyTest, TwoNodeTree) {
  const Topology topo = DiscoverTopology(TestDataPath("sysfs_2node"));
  EXPECT_TRUE(topo.from_sysfs);
  ASSERT_EQ(topo.nodes.size(), 2u);
  EXPECT_EQ(topo.nodes[0].id, 0);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(topo.nodes[1].id, 1);
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<int>{8, 9, 10, 11, 12, 13, 14, 15}));
  EXPECT_EQ(topo.num_cpus, 16);
}

TEST(DiscoverTopologyTest, SparseTreeDropsMemoryOnlyNodeAndOfflineCpus) {
  // online nodes: 0, 2, 3. node2 has no cpus (memory-only) -> dropped.
  // node3's cpulist is 8-11,24-27 but only 8-9,24-27 are online.
  const Topology topo = DiscoverTopology(TestDataPath("sysfs_sparse"));
  EXPECT_TRUE(topo.from_sysfs);
  ASSERT_EQ(topo.nodes.size(), 2u);
  EXPECT_EQ(topo.nodes[0].id, 0);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{0, 1, 2, 3, 16, 17, 18, 19}));
  EXPECT_EQ(topo.nodes[1].id, 3);
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<int>{8, 9, 24, 25, 26, 27}));
  EXPECT_EQ(topo.num_cpus, 14);
}

TEST(DiscoverTopologyTest, MissingRootFallsBackToSingleNode) {
  const Topology topo = DiscoverTopology(TestDataPath("sysfs_does_not_exist"));
  EXPECT_FALSE(topo.from_sysfs);
  ASSERT_EQ(topo.nodes.size(), 1u);
  EXPECT_EQ(topo.nodes[0].id, 0);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  EXPECT_EQ(topo.num_cpus, std::max(hw, 1));
  EXPECT_EQ(static_cast<int>(topo.nodes[0].cpus.size()), topo.num_cpus);
}

TEST(AssignWorkerNodesTest, ProportionalContiguous) {
  EXPECT_EQ(AssignWorkerNodes(4, 1), (std::vector<int>{0, 0, 0, 0}));
  EXPECT_EQ(AssignWorkerNodes(4, 2), (std::vector<int>{0, 0, 1, 1}));
  EXPECT_EQ(AssignWorkerNodes(3, 2), (std::vector<int>{0, 0, 1}));
  EXPECT_EQ(AssignWorkerNodes(6, 3), (std::vector<int>{0, 0, 1, 1, 2, 2}));
  // Fewer workers than nodes: distinct nodes, spread out.
  EXPECT_EQ(AssignWorkerNodes(2, 4), (std::vector<int>{0, 2}));
}

TEST(PartitionWorkersByNodeTest, AlignsShardCutsWithNodeBoundaries) {
  // 4 workers on 2 nodes, 2 shards: proportional cut already node-aligned.
  EXPECT_EQ(PartitionWorkersByNode(4, 2, {0, 0, 1, 1}),
            (std::vector<int>{0, 2, 4}));
  // 6 workers with an uneven 4/2 node split: the proportional cut (3)
  // snaps to the node boundary at 4.
  EXPECT_EQ(PartitionWorkersByNode(6, 2, {0, 0, 0, 0, 1, 1}),
            (std::vector<int>{0, 4, 6}));
}

TEST(PartitionWorkersByNodeTest, SingleNodeMatchesProportionalSplit) {
  // One node offers no boundary to snap to; cuts must equal the legacy
  // proportional formula s*W/S (the numa_policy=none bitwise contract).
  const std::vector<int> bounds = PartitionWorkersByNode(5, 2, {0, 0, 0, 0, 0});
  EXPECT_EQ(bounds, (std::vector<int>{0, 2, 5}));
  const std::vector<int> bounds3 = PartitionWorkersByNode(7, 3, {0, 0, 0, 0, 0, 0, 0});
  EXPECT_EQ(bounds3, (std::vector<int>{0, 2, 4, 7}));
}

TEST(PartitionWorkersByNodeTest, MoreShardsThanNodesKeepsShardsNonEmpty) {
  const std::vector<int> bounds = PartitionWorkersByNode(4, 4, {0, 0, 1, 1});
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), 4);
  for (size_t s = 1; s < bounds.size(); ++s) {
    EXPECT_GT(bounds[s], bounds[s - 1]);  // every shard non-empty
  }
}

#ifdef __linux__
TEST(PinCurrentThreadTest, PinsToAllowedCpuAndReportsMask) {
  cpu_set_t original;
  CPU_ZERO(&original);
  ASSERT_EQ(sched_getaffinity(0, sizeof(original), &original), 0);
  int first_allowed = -1;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &original)) {
      first_allowed = cpu;
      break;
    }
  }
  ASSERT_GE(first_allowed, 0);

  EXPECT_TRUE(PinCurrentThreadToCpus({first_allowed}));
  cpu_set_t now;
  CPU_ZERO(&now);
  ASSERT_EQ(sched_getaffinity(0, sizeof(now), &now), 0);
  EXPECT_EQ(CPU_COUNT(&now), 1);
  EXPECT_TRUE(CPU_ISSET(first_allowed, &now));

  // Restore so later tests in this binary run unrestricted.
  ASSERT_EQ(sched_setaffinity(0, sizeof(original), &original), 0);
}

TEST(PinCurrentThreadTest, DisjointOrEmptySetLeavesThreadUnchanged) {
  cpu_set_t original;
  CPU_ZERO(&original);
  ASSERT_EQ(sched_getaffinity(0, sizeof(original), &original), 0);

  // Empty request and a cpu far outside any real machine's allowed set:
  // both must refuse without touching the mask (graceful taskset/cgroup
  // degradation — placement is a hint, not a requirement).
  EXPECT_FALSE(PinCurrentThreadToCpus({}));
  EXPECT_FALSE(PinCurrentThreadToCpus({CPU_SETSIZE - 1}));

  cpu_set_t now;
  CPU_ZERO(&now);
  ASSERT_EQ(sched_getaffinity(0, sizeof(now), &now), 0);
  EXPECT_TRUE(CPU_EQUAL(&original, &now));
}
#endif  // __linux__

TEST(SetCurrentThreadNameTest, LongNamesTruncateWithoutError) {
  // 15-char kernel limit: must not abort or corrupt the thread.
  SetCurrentThreadName("worker/123456789-stager-overlong");
  SetCurrentThreadName("");
  SetCurrentThreadName("manager/0");
}

}  // namespace
}  // namespace batchmaker
