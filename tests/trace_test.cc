// Tests for trace record/replay: ordering, JSON round trips, rate scaling,
// and replay against a serving system.

#include <gtest/gtest.h>

#include "src/sim/batchmaker_system.h"
#include "src/sim/loadgen.h"
#include "src/workload/trace.h"
#include "tests/test_models.h"

namespace batchmaker {
namespace {

TEST(TraceTest, AddAndAccessors) {
  Trace trace;
  trace.Add(0.0, WorkItem::Chain(3));
  trace.Add(100.0, WorkItem::Chain(5));
  trace.Add(300.0, WorkItem::Seq2Seq(2, 4));
  EXPECT_EQ(trace.Size(), 3u);
  EXPECT_DOUBLE_EQ(trace.DurationMicros(), 300.0);
  EXPECT_NEAR(trace.OfferedRps(), 2.0 / 300e-6, 1.0);
  EXPECT_EQ(trace.entry(2).item.kind, WorkItem::Kind::kSeq2Seq);
}

TEST(TraceDeathTest, RejectsOutOfOrderArrivals) {
  Trace trace;
  trace.Add(100.0, WorkItem::Chain(1));
  EXPECT_DEATH(trace.Add(50.0, WorkItem::Chain(1)), "time-ordered");
}

TEST(TraceTest, JsonRoundTripChainAndSeq2Seq) {
  Trace trace;
  trace.Add(1.5, WorkItem::Chain(7));
  trace.Add(2.5, WorkItem::Seq2Seq(3, 9));
  const Trace parsed = Trace::FromJsonText(trace.ToJsonText());
  ASSERT_EQ(parsed.Size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.entry(0).arrival_micros, 1.5);
  EXPECT_EQ(parsed.entry(0).item.length, 7);
  EXPECT_EQ(parsed.entry(1).item.src_len, 3);
  EXPECT_EQ(parsed.entry(1).item.dec_len, 9);
}

TEST(TraceTest, JsonRoundTripTreePreservesStructure) {
  Rng rng(1);
  Trace trace;
  const BinaryTree original = BinaryTree::RandomParse(9, 50, &rng);
  trace.Add(0.0, WorkItem::Tree(original));
  const Trace parsed = Trace::FromJsonText(trace.ToJsonText(/*pretty=*/true));
  const BinaryTree& tree = parsed.entry(0).item.tree;
  tree.Validate();
  ASSERT_EQ(tree.NumNodes(), original.NumNodes());
  EXPECT_EQ(tree.root, original.root);
  for (int i = 0; i < tree.NumNodes(); ++i) {
    EXPECT_EQ(tree.nodes[static_cast<size_t>(i)].left,
              original.nodes[static_cast<size_t>(i)].left);
    EXPECT_EQ(tree.nodes[static_cast<size_t>(i)].token,
              original.nodes[static_cast<size_t>(i)].token);
  }
}

TEST(TraceDeathTest, RejectsWrongFormatTag) {
  EXPECT_DEATH(Trace::FromJsonText(R"({"format":"something-else","entries":[]})"),
               "not a batchmaker trace");
}

TEST(TraceTest, ScaleRateHalvesArrivalGaps) {
  Trace trace;
  trace.Add(0.0, WorkItem::Chain(1));
  trace.Add(1000.0, WorkItem::Chain(1));
  const Trace faster = trace.ScaleRate(0.5);
  EXPECT_DOUBLE_EQ(faster.entry(1).arrival_micros, 500.0);
  EXPECT_NEAR(faster.OfferedRps(), 2.0 * trace.OfferedRps(), 1e-6);
}

TEST(TraceTest, SynthesizeMatchesRate) {
  Rng rng(2);
  WmtLengthSampler sampler;
  Rng data_rng(3);
  const auto dataset = SampleChainDataset(100, sampler, &data_rng);
  const Trace trace = Trace::Synthesize(dataset, 2000.0, 2e6, &rng);
  EXPECT_NEAR(static_cast<double>(trace.Size()), 4000.0, 400.0);
  EXPECT_NEAR(trace.OfferedRps(), 2000.0, 200.0);
}

TEST(TraceTest, ReplayAgainstBatchMaker) {
  TinyLstmFixture fix;
  fix.registry.SetMaxBatch(fix.model.cell_type(), 512);
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), GpuLstmCurve());
  cost.SetPerTaskOverheadMicros(kBatchMakerTaskOverheadMicros);
  cost.SetPerItemOverheadMicros(kBatchMakerPerItemOverheadMicros);

  Rng rng(4);
  WmtLengthSampler sampler;
  Rng data_rng(5);
  const auto dataset = SampleChainDataset(500, sampler, &data_rng);
  const Trace trace = Trace::Synthesize(dataset, 2000.0, 1e6, &rng);

  BatchMakerSystem system(&fix.registry, &cost, [&](const WorkItem& item) {
    return fix.model.Unfold(item.length);
  });
  const LoadPoint point = ReplayTrace(&system, trace);
  EXPECT_FALSE(point.saturated);
  EXPECT_GT(point.measured_requests, 100u);
  EXPECT_GT(point.p50_ms, 0.0);
  EXPECT_EQ(system.NumUnfinished(), 0u);
}

TEST(TraceTest, ReplayIsDeterministic) {
  TinyLstmFixture fix;
  CostModel cost;
  cost.SetCurve(fix.model.cell_type(), GpuLstmCurve());

  Rng rng(6);
  WmtLengthSampler sampler;
  Rng data_rng(7);
  const auto dataset = SampleChainDataset(200, sampler, &data_rng);
  const Trace trace = Trace::Synthesize(dataset, 1000.0, 5e5, &rng);

  auto run = [&] {
    BatchMakerSystem system(&fix.registry, &cost, [&](const WorkItem& item) {
      return fix.model.Unfold(item.length);
    });
    return ReplayTrace(&system, trace);
  };
  const LoadPoint a = run();
  const LoadPoint b = run();
  EXPECT_DOUBLE_EQ(a.p50_ms, b.p50_ms);
  EXPECT_DOUBLE_EQ(a.p99_ms, b.p99_ms);
  EXPECT_DOUBLE_EQ(a.achieved_rps, b.achieved_rps);
}

TEST(TraceTest, JsonSurvivesSerializedRoundTripThenReplay) {
  // Full product flow: synthesize -> serialize -> parse -> replay.
  TinyTreeLstmFixture fix;
  CostModel cost;
  cost.SetCurve(fix.model.leaf_type(), GpuTreeCellCurve());
  cost.SetCurve(fix.model.internal_type(), GpuTreeCellCurve());

  Rng rng(8);
  const auto dataset = SampleTreeDataset(50, 64, &rng);
  const Trace trace = Trace::Synthesize(dataset, 500.0, 5e5, &rng);
  const Trace parsed = Trace::FromJsonText(trace.ToJsonText());
  ASSERT_EQ(parsed.Size(), trace.Size());

  BatchMakerSystem system(&fix.registry, &cost, [&](const WorkItem& item) {
    return fix.model.Unfold(item.tree);
  });
  const LoadPoint point = ReplayTrace(&system, parsed);
  EXPECT_EQ(system.NumUnfinished(), 0u);
  EXPECT_GT(point.measured_requests, 0u);
}

}  // namespace
}  // namespace batchmaker
