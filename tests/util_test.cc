// Tests for src/util: rng, stats, json, string_util, queue.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "src/util/json.h"
#include "src/util/queue.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/string_util.h"

namespace batchmaker {
namespace {

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextU64() != b.NextU64()) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.NextBelow(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(17);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(rate);
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(99);
  Rng forked = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(99);
  b.Fork();
  EXPECT_NE(forked.NextU64(), a.NextU64());
}

// ---------- SampleSet ----------

TEST(SampleSetTest, BasicMoments) {
  SampleSet s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.Count(), 4u);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
}

TEST(SampleSetTest, PercentileInterpolates) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_NEAR(s.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(90), 90.1, 1e-9);
}

TEST(SampleSetTest, PercentileSingleSample) {
  SampleSet s;
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 7.0);
}

TEST(SampleSetTest, CdfAt) {
  SampleSet s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.CdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.CdfAt(10.0), 1.0);
}

TEST(SampleSetTest, AddAfterSortedQueryInvalidatesCache) {
  SampleSet s;
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  s.Add(9.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(SampleSetTest, CdfCurveMonotone) {
  SampleSet s;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    s.Add(rng.NextDouble());
  }
  const auto curve = s.CdfCurve(20);
  ASSERT_EQ(curve.size(), 20u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(SampleSetTest, StddevOfConstantIsZero) {
  SampleSet s;
  s.Add(3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Stddev(), 0.0);
}

// ---------- Histogram ----------

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(9.9);
  h.Add(-1.0);
  h.Add(10.0);
  EXPECT_EQ(h.TotalCount(), 4u);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(9), 1u);
  EXPECT_EQ(h.Underflow(), 1u);
  EXPECT_EQ(h.Overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.BucketLow(3), 3.0);
}

// ---------- Json ----------

TEST(JsonTest, RoundTripScalars) {
  EXPECT_EQ(Json::Parse("null").type(), Json::Type::kNull);
  EXPECT_TRUE(Json::Parse("true").AsBool());
  EXPECT_FALSE(Json::Parse("false").AsBool());
  EXPECT_DOUBLE_EQ(Json::Parse("3.25").AsDouble(), 3.25);
  EXPECT_EQ(Json::Parse("-17").AsInt(), -17);
  EXPECT_EQ(Json::Parse("\"hi\"").AsString(), "hi");
}

TEST(JsonTest, RoundTripNested) {
  const std::string text = R"({"a":[1,2,{"b":"x"}],"c":null,"d":true})";
  const Json j = Json::Parse(text);
  EXPECT_EQ(j.Get("a").Size(), 3u);
  EXPECT_EQ(j.Get("a").At(2).Get("b").AsString(), "x");
  EXPECT_TRUE(j.Get("c").is_null());
  // Re-parse of the dump matches.
  const Json j2 = Json::Parse(j.Dump());
  EXPECT_EQ(j2.Get("a").At(1).AsInt(), 2);
}

TEST(JsonTest, EscapesInStrings) {
  JsonObject obj;
  obj["s"] = "line1\nline2\t\"quoted\"\\";
  const Json j{std::move(obj)};
  const Json parsed = Json::Parse(j.Dump());
  EXPECT_EQ(parsed.Get("s").AsString(), "line1\nline2\t\"quoted\"\\");
}

TEST(JsonTest, UnicodeEscapeParses) {
  const Json j = Json::Parse("\"\\u0041\\u00e9\"");
  EXPECT_EQ(j.AsString(), "A\xc3\xa9");
}

TEST(JsonTest, TryParseRejectsMalformed) {
  Json out;
  std::string error;
  EXPECT_FALSE(Json::TryParse("{\"a\":}", &out, &error));
  EXPECT_FALSE(Json::TryParse("[1,2", &out, &error));
  EXPECT_FALSE(Json::TryParse("", &out, &error));
  EXPECT_FALSE(Json::TryParse("1 2", &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(JsonTest, CopiesAreDeep) {
  JsonObject obj;
  obj["arr"] = Json(JsonArray{Json(1)});
  Json a{std::move(obj)};
  Json b = a;
  b.AsObject()["arr"].AsArray().push_back(Json(2));
  EXPECT_EQ(a.Get("arr").Size(), 1u);
  EXPECT_EQ(b.Get("arr").Size(), 2u);
}

TEST(JsonTest, LargeIntegersExact) {
  const int64_t big = (1LL << 52) + 12345;
  const Json j(big);
  EXPECT_EQ(Json::Parse(j.Dump()).AsInt(), big);
}

TEST(JsonTest, PrettyDumpParses) {
  JsonObject obj;
  obj["x"] = Json(JsonArray{Json(1), Json(2)});
  obj["y"] = "z";
  const Json j{std::move(obj)};
  const std::string pretty = j.Dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Json::Parse(pretty).Get("y").AsString(), "z");
}

// ---------- string_util ----------

TEST(StringUtilTest, StrPrintf) {
  EXPECT_EQ(StrPrintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrPrintf("%.2f", 1.5), "1.50");
}

TEST(StringUtilTest, SplitAndJoin) {
  const auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(StrJoin(parts, "|"), "a|b||c");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("batchmaker", "batch"));
  EXPECT_FALSE(StartsWith("batch", "batchmaker"));
  EXPECT_TRUE(EndsWith("fig07.json", ".json"));
  EXPECT_FALSE(EndsWith("fig07.json", ".csv"));
}

TEST(StringUtilTest, FormatMicrosUnits) {
  EXPECT_EQ(FormatMicros(185.0), "185us");
  EXPECT_EQ(FormatMicros(1380.0), "1.38ms");
  EXPECT_EQ(FormatMicros(2.4e6), "2.40s");
}

// ---------- BlockingQueue ----------

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
}

TEST(BlockingQueueTest, TryPopEmpty) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, CloseWakesConsumer) {
  BlockingQueue<int> q;
  std::thread consumer([&q] {
    const auto v = q.Pop();
    EXPECT_FALSE(v.has_value());
  });
  q.Close();
  consumer.join();
}

TEST(BlockingQueueTest, DrainsBeforeCloseSignals) {
  BlockingQueue<int> q;
  q.Push(7);
  q.Close();
  EXPECT_EQ(q.Pop().value(), 7);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, CrossThreadTransfer) {
  BlockingQueue<int> q;
  constexpr int kCount = 1000;
  std::thread producer([&q] {
    for (int i = 0; i < kCount; ++i) {
      q.Push(i);
    }
    q.Close();
  });
  int sum = 0;
  while (auto v = q.Pop()) {
    sum += *v;
  }
  producer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

TEST(BlockingQueueTest, DrainAll) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  const auto items = q.DrainAll();
  EXPECT_EQ(items.size(), 2u);
  EXPECT_TRUE(q.Empty());
}

// --- PopFor: timeouts, shutdown races, spurious wakeups --------------------
// The health watchdog adds another PopFor waiter to the worker streams, so
// the timed-wait path gets dedicated coverage.

TEST(BlockingQueueTest, PopForTimesOutEmpty) {
  BlockingQueue<int> q;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.PopFor(std::chrono::milliseconds(10)).has_value());
  // The wait actually waited (guards against a busy-spin regression) but
  // did not hang far past the deadline.
  EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(5));
}

TEST(BlockingQueueTest, PopForReturnsItemPushedMidWait) {
  BlockingQueue<int> q;
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.Push(42);
  });
  // Deadline far beyond the push: the value, not a timeout, must win.
  const auto v = q.PopFor(std::chrono::seconds(10));
  producer.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(BlockingQueueTest, PopForWokenByCloseReturnsNullopt) {
  BlockingQueue<int> q;
  std::thread consumer([&q] {
    // Close must wake the timed wait well before its 10s deadline.
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(q.PopFor(std::chrono::seconds(10)).has_value());
    EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(5));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.Close();
  consumer.join();
}

TEST(BlockingQueueTest, PopForDrainsItemsAfterClose) {
  // Close-with-items: every queued item is still delivered through the
  // timed path; only then does PopFor report shutdown.
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_EQ(q.PopFor(std::chrono::milliseconds(50)).value(), 1);
  EXPECT_EQ(q.PopFor(std::chrono::milliseconds(50)).value(), 2);
  EXPECT_FALSE(q.PopFor(std::chrono::milliseconds(1)).has_value());
}

TEST(BlockingQueueTest, PopForShutdownRaceStress) {
  // Race Close() against a pack of timed waiters, repeatedly. Under TSan
  // this exercises the cv/mutex/closed_ interplay; under any build it
  // asserts the conservation property: every pushed item is consumed by
  // exactly one waiter, and after Close every waiter unblocks.
  constexpr int kRounds = 50;
  constexpr int kWaiters = 4;
  constexpr int kItems = 16;
  for (int round = 0; round < kRounds; ++round) {
    BlockingQueue<int> q;
    std::atomic<int> consumed{0};
    std::vector<std::thread> waiters;
    for (int w = 0; w < kWaiters; ++w) {
      waiters.emplace_back([&q, &consumed] {
        // Mixed deadlines: some waits expire (spurious-wakeup-like timed
        // re-entry), some are woken by pushes, some by Close.
        while (q.PopFor(std::chrono::microseconds(200)).has_value()) {
          consumed.fetch_add(1);
        }
        // A timeout is not shutdown: re-enter until truly closed+empty.
        while (!q.Closed() || !q.Empty()) {
          if (q.PopFor(std::chrono::microseconds(200)).has_value()) {
            consumed.fetch_add(1);
          }
        }
      });
    }
    std::thread producer([&q] {
      for (int i = 0; i < kItems; ++i) {
        q.Push(i);
        if ((i & 3) == 0) {
          std::this_thread::yield();
        }
      }
      q.Close();
    });
    producer.join();
    for (std::thread& t : waiters) {
      t.join();
    }
    EXPECT_EQ(consumed.load(), kItems) << "round " << round;
  }
}

}  // namespace
}  // namespace batchmaker
