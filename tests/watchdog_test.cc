// Tests for worker failure domains (DESIGN.md "Worker failure domains"):
// the heartbeat watchdog's healthy / slow / hung / dead classification,
// quarantine + requeue of a flagged worker's stream, dead exec-thread
// respawn, and probe-based re-admission — all driven through the
// FaultInjector's deterministic worker-chaos modes. The invariant under
// test throughout: a hung, killed, or slowed worker delays requests but
// never loses one — every Submit gets exactly one terminal callback, and
// every kOk response is bitwise identical to the fault-free SyncEngine.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/fault_injector.h"
#include "src/core/server.h"
#include "src/core/sync_engine.h"
#include "tests/test_models.h"

namespace batchmaker {
namespace {

std::vector<Tensor> MakeChainExternals(const std::vector<Tensor>& xs, int64_t hidden) {
  std::vector<Tensor> ext = xs;
  ext.push_back(ExternalZeroVecTensor(hidden));
  ext.push_back(ExternalZeroVecTensor(hidden));
  return ext;
}

struct ChainRequest {
  int length = 0;
  std::vector<Tensor> xs;
};

std::vector<ChainRequest> MakeChainRequests(const std::vector<int>& lengths,
                                            int64_t input_dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<ChainRequest> requests;
  for (const int len : lengths) {
    ChainRequest r;
    r.length = len;
    for (int t = 0; t < len; ++t) {
      r.xs.push_back(Tensor::RandomUniform(Shape{1, input_dim}, 1.0f, &rng));
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

// Fault-free bitwise reference: the final hidden state of each chain,
// computed by the serial SyncEngine over the same graphs and inputs.
std::vector<Tensor> ReferenceOutputs(const CellRegistry* registry, const LstmModel& model,
                                     const std::vector<ChainRequest>& requests,
                                     int64_t hidden) {
  SyncEngine engine(registry);
  std::vector<RequestId> ids;
  for (const ChainRequest& r : requests) {
    ids.push_back(engine.Submit(model.Unfold(r.length), MakeChainExternals(r.xs, hidden),
                                {ValueRef::Output(r.length - 1, 0)}));
  }
  engine.RunToCompletion();
  std::vector<Tensor> outputs;
  for (const RequestId id : ids) {
    std::vector<Tensor> out = engine.TakeResponse(id).outputs;
    outputs.push_back(std::move(out[0]));
  }
  return outputs;
}

// Submits every chain, waits for all terminal callbacks, and asserts the
// exactly-once + bitwise-vs-reference invariant. Returns only once every
// request has its terminal status (so the caller may probe health state
// before Shutdown).
struct ChainRun {
  std::vector<RequestId> ids;
  std::map<RequestId, RequestStatus> statuses;
  std::map<RequestId, std::vector<Tensor>> outputs;
};

ChainRun SubmitAndAwaitAll(Server* server, const LstmModel& model,
                           const std::vector<ChainRequest>& requests, int64_t hidden) {
  // Shared (not stack-captured) so a terminal callback finishing just as
  // the waiter below returns cannot touch destroyed state.
  struct State {
    std::mutex mu;
    std::map<RequestId, RequestStatus> statuses;
    std::map<RequestId, std::vector<Tensor>> outputs;
    std::atomic<size_t> done{0};
  };
  auto state = std::make_shared<State>();
  ChainRun run;
  for (const ChainRequest& r : requests) {
    run.ids.push_back(server->Submit(
        model.Unfold(r.length), MakeChainExternals(r.xs, hidden),
        {ValueRef::Output(r.length - 1, 0)},
        [state](RequestId rid, RequestStatus status, std::vector<Tensor> out) {
          std::lock_guard<std::mutex> lock(state->mu);
          EXPECT_EQ(state->statuses.count(rid), 0u)
              << "second terminal callback for " << rid;
          state->statuses[rid] = status;
          state->outputs[rid] = std::move(out);
          state->done.fetch_add(1);
        }));
  }
  const auto start = std::chrono::steady_clock::now();
  while (state->done.load() < requests.size()) {
    if (std::chrono::steady_clock::now() - start >= std::chrono::seconds(60)) {
      ADD_FAILURE() << "requests did not drain: " << state->done.load() << "/"
                    << requests.size();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> lock(state->mu);
  run.statuses = state->statuses;
  run.outputs = std::move(state->outputs);
  return run;
}

void ExpectAllOkBitwise(const ChainRun& run, const std::vector<Tensor>& reference) {
  ASSERT_EQ(run.statuses.size(), run.ids.size());
  for (size_t i = 0; i < run.ids.size(); ++i) {
    const RequestId id = run.ids[i];
    ASSERT_EQ(run.statuses.at(id), RequestStatus::kOk) << "request " << i;
    ASSERT_EQ(run.outputs.at(id).size(), 1u) << "request " << i;
    EXPECT_TRUE(run.outputs.at(id)[0].ElementsEqual(reference[i])) << "request " << i;
  }
}

// Polls HealthReport until `worker` is re-admitted (healthy and out of
// quarantine), proving the self-healing loop closes.
void AwaitReadmission(const Server& server, int worker) {
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    const auto report = server.HealthReport();
    const auto& row = report[static_cast<size_t>(worker)];
    if (!row.quarantined && row.health == WorkerHealth::kHealthy) {
      return;
    }
    ASSERT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(30))
        << "worker " << worker << " never re-admitted (health="
        << WorkerHealthName(row.health) << ")";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// --- Watchdog off / idle behaviour -----------------------------------------

TEST(WatchdogTest, ReportIsAllHealthyZerosWhenWatchdogOff) {
  TinyLstmFixture fix;
  ServerOptions options;
  options.num_workers = 2;
  Server server(&fix.registry, options);
  server.Start();
  const auto report = server.HealthReport();
  server.Shutdown();
  ASSERT_EQ(report.size(), 2u);
  for (const WorkerHealthSnapshot& row : report) {
    EXPECT_EQ(row.health, WorkerHealth::kHealthy);
    EXPECT_FALSE(row.quarantined);
    EXPECT_EQ(row.heartbeat_epoch, 0);
    EXPECT_EQ(row.busy_task_seq, -1);
    EXPECT_EQ(row.quarantines, 0);
  }
  EXPECT_EQ(server.Quarantines(), 0);
  EXPECT_EQ(server.RequeuedTasks(), 0);
  EXPECT_EQ(server.Respawns(), 0);
}

TEST(WatchdogTest, HealthyFleetNoFalseQuarantinesBitwiseIdentical) {
  constexpr int64_t kHidden = 4;
  const std::vector<int> lengths = {3, 5, 2, 4, 6, 1, 4, 3};
  TinyLstmFixture fix;
  const auto requests = MakeChainRequests(lengths, kHidden, /*seed=*/91);
  const auto reference = ReferenceOutputs(&fix.registry, fix.model, requests, kHidden);

  ServerOptions options;
  options.num_workers = 2;
  options.health.health_watchdog = true;
  options.health.check_interval_micros = 200.0;
  // Generous hang floor: under TSan every task runs an order of magnitude
  // slower, and this test asserts *zero* quarantines — instrumentation
  // slowness must not read as a hang.
  options.health.min_hang_micros = 10e6;
  Server server(&fix.registry, options);
  server.Start();
  const ChainRun run = SubmitAndAwaitAll(&server, fix.model, requests, kHidden);
  server.Shutdown();

  ExpectAllOkBitwise(run, reference);
  // Heartbeats flowed but nothing tripped: no quarantine, no requeue, no
  // respawn on a healthy fleet.
  EXPECT_EQ(server.Quarantines(), 0);
  EXPECT_EQ(server.RequeuedTasks(), 0);
  EXPECT_EQ(server.Respawns(), 0);
  int64_t epochs = 0;
  for (const WorkerHealthSnapshot& row : server.HealthReport()) {
    EXPECT_EQ(row.health, WorkerHealth::kHealthy);
    EXPECT_FALSE(row.quarantined);
    epochs += row.heartbeat_epoch;
  }
  EXPECT_GT(epochs, 0);
}

// --- Hang drill -------------------------------------------------------------

TEST(WatchdogTest, HungWorkerQuarantinedRequestsRecoverBitwise) {
  constexpr int64_t kHidden = 4;
  std::vector<int> lengths;
  for (int i = 0; i < 12; ++i) {
    lengths.push_back(1 + (i * 5) % 7);
  }
  TinyLstmFixture fix;
  const auto requests = MakeChainRequests(lengths, kHidden, /*seed=*/92);
  const auto reference = ReferenceOutputs(&fix.registry, fix.model, requests, kHidden);

  ServerOptions options;
  options.num_workers = 2;
  options.pipeline_depth = 2;
  // Worker 0's stream hangs inside the exec of its seq-0 task for far
  // longer than the hang threshold.
  options.fault.chaos_worker = 0;
  options.fault.chaos_task_seq = 0;
  options.fault.chaos_hang_micros = 120000.0;
  options.health.health_watchdog = true;
  options.health.check_interval_micros = 500.0;
  options.health.min_hang_micros = 2000.0;
  options.health.probe_backoff_micros = 500.0;
  Server server(&fix.registry, options);
  server.Start();

  const ChainRun run = SubmitAndAwaitAll(&server, fix.model, requests, kHidden);
  // The hang drains through two paths: the watchdog quarantines worker 0
  // and requeues its stream onto worker 1, and the hung task itself
  // completes when the sleep ends. Recovery then re-admits the worker.
  EXPECT_GE(server.Quarantines(), 1);
  AwaitReadmission(server, /*worker=*/0);
  server.Shutdown();

  ExpectAllOkBitwise(run, reference);
  const auto report = server.HealthReport();
  EXPECT_GE(report[0].quarantines, 1);
  EXPECT_EQ(server.Respawns(), 0);  // thread never died, only hung
  EXPECT_GE(server.metrics().worker(0).readmissions.load(), 1);
}

// --- Exit (dead thread) drill ----------------------------------------------

TEST(WatchdogTest, DeadExecThreadRespawnedRequestsRecoverBitwise) {
  constexpr int64_t kHidden = 4;
  std::vector<int> lengths;
  for (int i = 0; i < 12; ++i) {
    lengths.push_back(1 + (i * 3) % 6);
  }
  TinyLstmFixture fix;
  const auto requests = MakeChainRequests(lengths, kHidden, /*seed=*/93);
  const auto reference = ReferenceOutputs(&fix.registry, fix.model, requests, kHidden);

  ServerOptions options;
  options.num_workers = 2;
  options.pipeline_depth = 2;
  // Worker 0's exec thread exits while holding its seq-0 task; the task is
  // reclaimed from the in-flight copy and requeued, the corpse joined, a
  // replacement thread spawned, and the worker re-admitted.
  options.fault.chaos_worker = 0;
  options.fault.chaos_task_seq = 0;
  options.fault.chaos_exit_thread = true;
  options.health.health_watchdog = true;
  options.health.check_interval_micros = 500.0;
  options.health.min_hang_micros = 2000.0;
  options.health.probe_backoff_micros = 500.0;
  Server server(&fix.registry, options);
  server.Start();

  const ChainRun run = SubmitAndAwaitAll(&server, fix.model, requests, kHidden);
  EXPECT_GE(server.Quarantines(), 1);
  EXPECT_GE(server.RequeuedTasks(), 1);  // the in-flight task was reclaimed
  // Readmission implies the replacement exec thread is already up, so the
  // respawn counter is only checked afterwards (the respawn can land after
  // the requests themselves drain through the surviving worker).
  AwaitReadmission(server, /*worker=*/0);
  EXPECT_GE(server.Respawns(), 1);
  server.Shutdown();

  ExpectAllOkBitwise(run, reference);
  const auto report = server.HealthReport();
  EXPECT_GE(report[0].respawns, 1);
}

// --- Slowdown drill (advisory only) ----------------------------------------

TEST(WatchdogTest, SlowdownChaosIsAdvisoryOnly) {
  // Hidden large enough that a slowed task spans several watchdog periods,
  // so the sampler reliably observes the worker mid-task.
  constexpr int64_t kHidden = 128;
  const std::vector<int> lengths = {6, 6, 6, 6};
  CellRegistry registry;
  Rng weight_rng(94);
  LstmModel model(&registry, LstmSpec{.input_dim = kHidden, .hidden = kHidden},
                  &weight_rng);
  const auto requests = MakeChainRequests(lengths, kHidden, /*seed=*/95);
  const auto reference = ReferenceOutputs(&registry, model, requests, kHidden);

  ServerOptions options;
  options.num_workers = 2;
  options.fault.chaos_worker = 0;
  options.fault.chaos_task_seq = 0;
  options.fault.chaos_slowdown_factor = 20.0;
  options.health.health_watchdog = true;
  options.health.check_interval_micros = 100.0;
  options.health.slow_multiplier = 0.001;
  options.health.min_hang_micros = 60e6;
  options.health.hang_multiplier = 1e9;
  Server server(&registry, options);
  server.Start();

  const ChainRun run = SubmitAndAwaitAll(&server, model, requests, kHidden);
  server.Shutdown();

  ExpectAllOkBitwise(run, reference);
  // Slow is advisory: counted, never quarantined.
  EXPECT_EQ(server.Quarantines(), 0);
  EXPECT_EQ(server.Respawns(), 0);
  int64_t slow_ticks = 0;
  for (int w = 0; w < 2; ++w) {
    slow_ticks += server.metrics().worker(w).slow_ticks.load();
  }
  EXPECT_GT(slow_ticks, 0);
}

// --- Randomized hang chaos stress ------------------------------------------

TEST(WatchdogTest, SeededHangRateExactlyOneCallbackPerRequest) {
  constexpr int64_t kHidden = 4;
  std::vector<int> lengths;
  for (int i = 0; i < 20; ++i) {
    lengths.push_back(1 + (i * 7) % 5);
  }
  TinyLstmFixture fix;
  const auto requests = MakeChainRequests(lengths, kHidden, /*seed=*/96);
  const auto reference = ReferenceOutputs(&fix.registry, fix.model, requests, kHidden);

  ServerOptions options;
  options.num_workers = 3;
  options.pipeline_depth = 2;
  // Each of worker 0's stream seqs hangs independently (seeded hash), so
  // the worker can be quarantined, re-admitted, and hung again.
  options.fault.chaos_worker = 0;
  options.fault.chaos_rate = 0.25;
  options.fault.seed = 97;
  options.fault.chaos_hang_micros = 30000.0;
  options.health.health_watchdog = true;
  options.health.check_interval_micros = 500.0;
  options.health.min_hang_micros = 2000.0;
  options.health.probe_backoff_micros = 500.0;
  Server server(&fix.registry, options);
  server.Start();

  const ChainRun run = SubmitAndAwaitAll(&server, fix.model, requests, kHidden);
  server.Shutdown();
  ExpectAllOkBitwise(run, reference);
}

// --- FaultInjectorOptions validation ----------------------------------------

TEST(FaultInjectorTest, FailRateBelowZeroClampsToZero) {
  FaultInjectorOptions options;
  options.fail_rate = -0.5;
  const FaultInjector injector(options);
  EXPECT_EQ(injector.options().fail_rate, 0.0);
}

TEST(FaultInjectorTest, FailRateAboveOneClampsToOne) {
  FaultInjectorOptions options;
  options.fail_rate = 1.5;
  const FaultInjector injector(options);
  EXPECT_EQ(injector.options().fail_rate, 1.0);
}

TEST(FaultInjectorTest, FailRateInRangeIsUntouched) {
  FaultInjectorOptions options;
  options.fail_rate = 0.25;
  const FaultInjector injector(options);
  EXPECT_EQ(injector.options().fail_rate, 0.25);
}

}  // namespace
}  // namespace batchmaker
