// Tests for src/workload: dataset statistics must match what the paper
// reports for WMT-15 Europarl and TreeBank (§7.1, Figure 10).

#include <gtest/gtest.h>

#include <algorithm>

#include "src/util/stats.h"
#include "src/workload/datasets.h"

namespace batchmaker {
namespace {

TEST(WmtSamplerTest, MeanNearPaperValue) {
  // §7.1: "The maximum sentence length is 330 and the average length is 24."
  WmtLengthSampler sampler;
  Rng rng(1);
  SampleSet lengths;
  for (int i = 0; i < 100000; ++i) {
    lengths.Add(sampler.Sample(&rng));
  }
  EXPECT_NEAR(lengths.Mean(), 24.0, 2.0);
}

TEST(WmtSamplerTest, NinetyNinePercentUnder100) {
  // Figure 10: "about 99 percent of sequences have length less than 100."
  // Our distribution keeps a slightly thinner tail than a literal 1%:
  // the tail fraction was calibrated so the padding baseline reaches the
  // peak throughput the paper measured for it (see EXPERIMENTS.md) — tail
  // requests execute near batch 1 and would otherwise dominate.
  WmtLengthSampler sampler;
  Rng rng(2);
  SampleSet lengths;
  for (int i = 0; i < 100000; ++i) {
    lengths.Add(sampler.Sample(&rng));
  }
  EXPECT_GE(lengths.CdfAt(100.0), 0.985);
  EXPECT_LE(lengths.CdfAt(100.0), 0.9999);
  // The tail still exists: some samples exceed 150.
  EXPECT_LT(lengths.CdfAt(150.0), 1.0);
}

TEST(WmtSamplerTest, RespectsBounds) {
  WmtLengthSampler sampler;
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    const int len = sampler.Sample(&rng);
    EXPECT_GE(len, 1);
    EXPECT_LE(len, 330);
  }
}

TEST(WmtSamplerTest, ClippedVariantsForFigure11) {
  Rng rng(4);
  for (int clip : {50, 100}) {
    WmtLengthSampler sampler(clip);
    int max_seen = 0;
    for (int i = 0; i < 20000; ++i) {
      max_seen = std::max(max_seen, sampler.Sample(&rng));
    }
    EXPECT_LE(max_seen, clip);
    EXPECT_GT(max_seen, clip / 2);  // clipping actually binds sometimes
  }
}

TEST(WmtSamplerTest, FixedLengthVariant) {
  WmtLengthSampler sampler(330, /*fixed_len=*/24);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.Sample(&rng), 24);
  }
}

TEST(WmtSamplerTest, DeterministicGivenSeed) {
  WmtLengthSampler sampler;
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.Sample(&a), sampler.Sample(&b));
  }
}

TEST(DatasetTest, ChainDatasetKindsAndSizes) {
  WmtLengthSampler sampler;
  Rng rng(6);
  const auto items = SampleChainDataset(1000, sampler, &rng);
  EXPECT_EQ(items.size(), 1000u);
  for (const auto& item : items) {
    EXPECT_EQ(item.kind, WorkItem::Kind::kChain);
    EXPECT_EQ(item.NumCells(), item.length);
    EXPECT_GE(item.length, 1);
  }
}

TEST(DatasetTest, Seq2SeqDecodeTracksSource) {
  WmtLengthSampler sampler;
  Rng rng(7);
  const auto items = SampleSeq2SeqDataset(5000, sampler, &rng);
  for (const auto& item : items) {
    EXPECT_EQ(item.kind, WorkItem::Kind::kSeq2Seq);
    EXPECT_GE(item.dec_len, 1);
    // Decode length within +-15% of source (plus rounding slack).
    EXPECT_LE(std::abs(item.dec_len - item.src_len),
              static_cast<int>(0.15 * item.src_len) + 1);
    EXPECT_EQ(item.NumCells(), item.src_len + item.dec_len);
  }
}

TEST(DatasetTest, TreeDatasetValidBinaryTrees) {
  Rng rng(8);
  const auto items = SampleTreeDataset(500, 30000, &rng);
  SampleSet leaves;
  for (const auto& item : items) {
    EXPECT_EQ(item.kind, WorkItem::Kind::kTree);
    item.tree.Validate();
    leaves.Add(item.tree.NumLeaves());
    EXPECT_EQ(item.NumCells(), 2 * item.tree.NumLeaves() - 1);
  }
  // TreeBank-scale sentences: mean ~19 words.
  EXPECT_NEAR(leaves.Mean(), 19.0, 3.0);
}

TEST(DatasetTest, FixedTreeDatasetUniformShape) {
  const auto items = FixedTreeDataset(10, 16);
  for (const auto& item : items) {
    EXPECT_EQ(item.tree.NumLeaves(), 16);
    EXPECT_EQ(item.tree.NumNodes(), 31);
  }
}

TEST(PoissonArrivalsTest, RateMatches) {
  Rng rng(9);
  const double rate = 5000.0;                 // 5k req/s
  const double horizon = 4e6;                 // 4 virtual seconds
  const auto arrivals = PoissonArrivals(rate, horizon, &rng);
  EXPECT_NEAR(static_cast<double>(arrivals.size()), rate * 4.0, rate * 4.0 * 0.05);
}

TEST(PoissonArrivalsTest, SortedAndInHorizon) {
  Rng rng(10);
  const auto arrivals = PoissonArrivals(1000.0, 1e6, &rng);
  ASSERT_FALSE(arrivals.empty());
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  EXPECT_GE(arrivals.front(), 0.0);
  EXPECT_LT(arrivals.back(), 1e6);
}

TEST(PoissonArrivalsTest, ExponentialGaps) {
  Rng rng(11);
  const double rate = 10000.0;
  const auto arrivals = PoissonArrivals(rate, 10e6, &rng);
  SampleSet gaps;
  for (size_t i = 1; i < arrivals.size(); ++i) {
    gaps.Add(arrivals[i] - arrivals[i - 1]);
  }
  // Mean gap 100us; exponential => stddev ~= mean.
  EXPECT_NEAR(gaps.Mean(), 100.0, 5.0);
  EXPECT_NEAR(gaps.Stddev(), 100.0, 10.0);
}

}  // namespace
}  // namespace batchmaker
