// bm_sweep: config-driven load sweeps over serving systems.
//
// Runs the virtual-time harness from a JSON config instead of recompiled
// C++ — the operational front door for what-if studies:
//
//   ./build/tools/bm_sweep --print-default-config > sweep.json
//   ./build/tools/bm_sweep sweep.json
//
// Config fields (all optional; defaults shown by --print-default-config):
//   model:        "lstm" | "seq2seq" | "treelstm"
//   systems:      any of "batchmaker", "padding", "dynet", "fold", "ideal"
//   rates_rps:    offered load points (sweep stops at saturation)
//   num_workers:  simulated GPUs
//   max_batch / dec_max_batch / bucket_width: batching knobs
//   dataset:      { max_len, fixed_len, count } (treelstm ignores lengths)
//   horizon_seconds, warmup_fraction, seed
//   output:       path for machine-readable JSON results ("" = none)

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "src/baselines/graph_merge_system.h"
#include "src/baselines/ideal_system.h"
#include "src/baselines/padding_system.h"
#include "src/nn/lstm.h"
#include "src/nn/seq2seq.h"
#include "src/nn/tree_lstm.h"
#include "src/sim/batchmaker_system.h"
#include "src/sim/loadgen.h"
#include "src/util/json.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace batchmaker {
namespace {

const char* kDefaultConfig = R"({
  "model": "lstm",
  "systems": ["batchmaker", "padding"],
  "rates_rps": [1000, 2000, 4000, 8000, 12000, 16000, 20000, 24000],
  "num_workers": 1,
  "max_batch": 512,
  "dec_max_batch": 256,
  "bucket_width": 10,
  "dataset": {"max_len": 330, "fixed_len": 0, "count": 20000},
  "horizon_seconds": 4.0,
  "warmup_fraction": 0.5,
  "seed": 1,
  "output": ""
})";

struct SweepConfig {
  std::string model = "lstm";
  std::vector<std::string> systems = {"batchmaker", "padding"};
  std::vector<double> rates;
  int num_workers = 1;
  int max_batch = 512;
  int dec_max_batch = 256;
  int bucket_width = 10;
  int dataset_max_len = 330;
  int dataset_fixed_len = 0;
  int dataset_count = 20000;
  LoadGenOptions loadgen;
  std::string output;
};

SweepConfig ParseConfig(const Json& json) {
  SweepConfig config;
  if (const Json* v = json.Find("model")) {
    config.model = v->AsString();
  }
  if (const Json* v = json.Find("systems")) {
    config.systems.clear();
    for (const Json& s : v->AsArray()) {
      config.systems.push_back(s.AsString());
    }
  }
  if (const Json* v = json.Find("rates_rps")) {
    for (const Json& r : v->AsArray()) {
      config.rates.push_back(r.AsDouble());
    }
  }
  if (const Json* v = json.Find("num_workers")) {
    config.num_workers = static_cast<int>(v->AsInt());
  }
  if (const Json* v = json.Find("max_batch")) {
    config.max_batch = static_cast<int>(v->AsInt());
  }
  if (const Json* v = json.Find("dec_max_batch")) {
    config.dec_max_batch = static_cast<int>(v->AsInt());
  }
  if (const Json* v = json.Find("bucket_width")) {
    config.bucket_width = static_cast<int>(v->AsInt());
  }
  if (const Json* v = json.Find("dataset")) {
    if (const Json* m = v->Find("max_len")) {
      config.dataset_max_len = static_cast<int>(m->AsInt());
    }
    if (const Json* m = v->Find("fixed_len")) {
      config.dataset_fixed_len = static_cast<int>(m->AsInt());
    }
    if (const Json* m = v->Find("count")) {
      config.dataset_count = static_cast<int>(m->AsInt());
    }
  }
  if (const Json* v = json.Find("horizon_seconds")) {
    config.loadgen.horizon_seconds = v->AsDouble();
  }
  if (const Json* v = json.Find("warmup_fraction")) {
    config.loadgen.warmup_fraction = v->AsDouble();
  }
  if (const Json* v = json.Find("seed")) {
    config.loadgen.seed = static_cast<uint64_t>(v->AsInt());
  }
  if (const Json* v = json.Find("output")) {
    config.output = v->AsString();
  }
  if (config.rates.empty()) {
    config.rates = {1000, 2000, 4000, 8000, 12000, 16000, 20000};
  }
  return config;
}

// Owns the registry/models/cost model a sweep needs; builds factories by
// system name.
class SweepContext {
 public:
  explicit SweepContext(const SweepConfig& config) : config_(config), rng_(777) {
    cost_.SetPerTaskOverheadMicros(kBatchMakerTaskOverheadMicros);
    cost_.SetPerItemOverheadMicros(kBatchMakerPerItemOverheadMicros);
    Rng data_rng(config.loadgen.seed ^ 0x5eed);
    if (config_.model == "lstm") {
      lstm_ = std::make_unique<LstmModel>(&registry_,
                                          LstmSpec{.input_dim = 4, .hidden = 4}, &rng_);
      registry_.SetMaxBatch(lstm_->cell_type(), config.max_batch);
      cost_.SetCurve(lstm_->cell_type(), GpuLstmCurve());
      const WmtLengthSampler sampler(config.dataset_max_len, config.dataset_fixed_len);
      dataset_ = SampleChainDataset(config.dataset_count, sampler, &data_rng);
    } else if (config_.model == "seq2seq") {
      seq2seq_ = std::make_unique<Seq2SeqModel>(
          &registry_, Seq2SeqSpec{.vocab = 64, .embed_dim = 4, .hidden = 4}, &rng_);
      registry_.SetMaxBatch(seq2seq_->encoder_type(), config.max_batch);
      registry_.SetMaxBatch(seq2seq_->decoder_type(), config.dec_max_batch);
      cost_.SetCurve(seq2seq_->encoder_type(), GpuLstmCurve());
      cost_.SetCurve(seq2seq_->decoder_type(), GpuDecoderCurve());
      const WmtLengthSampler sampler(config.dataset_max_len, config.dataset_fixed_len);
      dataset_ = SampleSeq2SeqDataset(config.dataset_count, sampler, &data_rng);
    } else if (config_.model == "treelstm") {
      tree_ = std::make_unique<TreeLstmModel>(
          &registry_, TreeLstmSpec{.vocab = 64, .embed_dim = 4, .hidden = 4}, &rng_);
      registry_.SetMaxBatch(tree_->leaf_type(), 64);
      registry_.SetMaxBatch(tree_->internal_type(), 64);
      cost_.SetCurve(tree_->leaf_type(), GpuTreeCellCurve());
      cost_.SetCurve(tree_->internal_type(), GpuTreeCellCurve());
      dataset_ = SampleTreeDataset(config.dataset_count, 64, &data_rng);
    } else {
      BM_LOG(Fatal) << "unknown model: " << config_.model;
    }
  }

  const std::vector<WorkItem>& dataset() const { return dataset_; }

  SystemFactory Factory(const std::string& system) {
    if (system == "batchmaker") {
      return [this] {
        SimEngineOptions options;
        options.num_workers = config_.num_workers;
        return std::make_unique<BatchMakerSystem>(
            &registry_, &cost_, [this](const WorkItem& item) { return Unfold(item); },
            options, "BatchMaker");
      };
    }
    if (system == "padding") {
      BM_CHECK(config_.model != "treelstm") << "padding cannot serve tree inputs";
      return [this] {
        PaddingSystemOptions options;
        options.bucket_width = config_.bucket_width;
        options.max_len = config_.dataset_max_len;
        options.max_batch =
            config_.model == "seq2seq" ? config_.dec_max_batch : config_.max_batch;
        options.num_workers = config_.num_workers;
        return std::make_unique<PaddingSystem>(options, "Padding");
      };
    }
    if (system == "dynet") {
      return [] {
        return std::make_unique<GraphMergeSystem>(GraphMergeOptions::DyNet(), "DyNet");
      };
    }
    if (system == "fold") {
      return [] {
        return std::make_unique<GraphMergeSystem>(GraphMergeOptions::Fold(), "TF-Fold");
      };
    }
    if (system == "ideal") {
      BM_CHECK(config_.model == "treelstm") << "the ideal baseline serves fixed trees";
      return [] { return std::make_unique<IdealFixedGraphSystem>(IdealSystemOptions{}); };
    }
    BM_LOG(Fatal) << "unknown system: " << system;
    return nullptr;
  }

 private:
  CellGraph Unfold(const WorkItem& item) const {
    switch (item.kind) {
      case WorkItem::Kind::kChain:
        return lstm_->Unfold(item.length);
      case WorkItem::Kind::kSeq2Seq:
        return seq2seq_->Unfold(item.src_len, item.dec_len);
      case WorkItem::Kind::kTree:
        return tree_->Unfold(item.tree);
    }
    BM_LOG(Fatal) << "bad work item";
    return CellGraph();
  }

  SweepConfig config_;
  CellRegistry registry_;
  Rng rng_;
  CostModel cost_;
  std::unique_ptr<LstmModel> lstm_;
  std::unique_ptr<Seq2SeqModel> seq2seq_;
  std::unique_ptr<TreeLstmModel> tree_;
  std::vector<WorkItem> dataset_;
};

Json PointToJson(const LoadPoint& p) {
  JsonObject obj;
  obj["system"] = p.system;
  obj["offered_rps"] = p.offered_rps;
  obj["achieved_rps"] = p.achieved_rps;
  obj["p50_ms"] = p.p50_ms;
  obj["p90_ms"] = p.p90_ms;
  obj["p99_ms"] = p.p99_ms;
  obj["queue_p99_ms"] = p.queue_p99_ms;
  obj["compute_p99_ms"] = p.compute_p99_ms;
  obj["measured_requests"] = p.measured_requests;
  obj["saturated"] = p.saturated;
  return Json(std::move(obj));
}

int Run(const std::string& config_text) {
  Json config_json;
  std::string error;
  if (!Json::TryParse(config_text, &config_json, &error)) {
    std::fprintf(stderr, "bad config: %s\n", error.c_str());
    return 1;
  }
  const SweepConfig config = ParseConfig(config_json);
  SweepContext context(config);

  JsonArray all_results;
  for (const std::string& system : config.systems) {
    std::printf("\n=== %s / %s ===\n", config.model.c_str(), system.c_str());
    const auto points =
        SweepLoad(context.Factory(system), context.dataset(), config.rates, config.loadgen);
    std::fputs(FormatLoadTable(points).c_str(), stdout);
    std::printf("peak: %.0f req/s\n", PeakThroughput(points));
    for (const LoadPoint& p : points) {
      all_results.emplace_back(PointToJson(p));
    }
  }

  if (!config.output.empty()) {
    JsonObject root;
    root["model"] = config.model;
    root["points"] = Json(std::move(all_results));
    std::ofstream out(config.output);
    out << Json(std::move(root)).Dump(2) << "\n";
    std::printf("\nresults written to %s\n", config.output.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace batchmaker

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--print-default-config") {
    std::fputs(batchmaker::kDefaultConfig, stdout);
    std::fputs("\n", stdout);
    return 0;
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s <config.json>\n       %s --print-default-config\n", argv[0],
                 argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return batchmaker::Run(buffer.str());
}
