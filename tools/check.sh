#!/usr/bin/env bash
# Tier-1 check: configure + build from a clean tree with -Wall -Wextra and
# run the full ctest suite, then rebuild the concurrency-sensitive tests
# under ThreadSanitizer and run them. Mirrors .github/workflows/ci.yml.
#
# Usage: tools/check.sh [--no-tsan] [--perf-smoke]
#   --perf-smoke  additionally run the fig07 perf-smoke point and compare
#                 p50 against bench/baselines/BENCH_fig07_baseline.json
#                 (mirrors the ci.yml perf-smoke job)
set -euo pipefail

cd "$(dirname "$0")/.."

run_tsan=1
run_perf=0
for arg in "$@"; do
  case "$arg" in
    --no-tsan) run_tsan=0 ;;
    --perf-smoke) run_perf=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "==> tier-1: clean configure + build + ctest"
rm -rf build-check
cmake -B build-check -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-check -j "$(nproc)"
ctest --test-dir build-check --output-on-failure -j "$(nproc)"

if [[ "$run_tsan" == 1 ]]; then
  echo "==> tsan: concurrency tests under -fsanitize=thread"
  rm -rf build-tsan
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
  cmake --build build-tsan -j "$(nproc)" \
    --target server_test obs_test thread_pool_test determinism_test
  ctest --test-dir build-tsan --output-on-failure \
    -R 'server_test|obs_test|thread_pool_test|determinism_test'
fi

if [[ "$run_perf" == 1 ]]; then
  echo "==> perf-smoke: fig07 low-rate point vs committed baseline"
  cmake --build build-check -j "$(nproc)" --target fig07_lstm_throughput_latency
  (cd build-check && ./bench/fig07_lstm_throughput_latency --smoke --out BENCH_fig07.json)
  python3 tools/compare_bench.py \
    bench/baselines/BENCH_fig07_baseline.json \
    build-check/BENCH_fig07.json \
    --metric p50_ms --threshold 0.25
fi

echo "==> all checks passed"
