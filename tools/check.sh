#!/usr/bin/env bash
# Tier-1 check: configure + build from a clean tree with -Wall -Wextra and
# run the full ctest suite, then rebuild the concurrency-sensitive tests
# under ThreadSanitizer and run them. Mirrors .github/workflows/ci.yml.
#
# Usage: tools/check.sh [--no-tsan]
set -euo pipefail

cd "$(dirname "$0")/.."

run_tsan=1
if [[ "${1:-}" == "--no-tsan" ]]; then
  run_tsan=0
fi

echo "==> tier-1: clean configure + build + ctest"
rm -rf build-check
cmake -B build-check -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-check -j "$(nproc)"
ctest --test-dir build-check --output-on-failure -j "$(nproc)"

if [[ "$run_tsan" == 1 ]]; then
  echo "==> tsan: concurrency tests under -fsanitize=thread"
  rm -rf build-tsan
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
  cmake --build build-tsan -j "$(nproc)" \
    --target server_test obs_test thread_pool_test determinism_test
  ctest --test-dir build-tsan --output-on-failure \
    -R 'server_test|obs_test|thread_pool_test|determinism_test'
fi

echo "==> all checks passed"
