#!/usr/bin/env bash
# Tier-1 check: configure + build from a clean tree with -Wall -Wextra and
# run the full ctest suite, then rebuild the concurrency-sensitive tests
# under ThreadSanitizer and run them. Mirrors .github/workflows/ci.yml.
#
# Usage: tools/check.sh [--no-tsan] [--asan] [--perf-smoke] [--chaos]
#   --asan        additionally rebuild the concurrency tests under
#                 ASan+UBSan and run them (mirrors the ci.yml asan job)
#   --perf-smoke  additionally run the fig07 + overload perf-smoke points
#                 and compare p50/p99 against
#                 bench/baselines/BENCH_fig07_baseline.json
#                 (mirrors the ci.yml perf-smoke job)
#   --chaos       additionally run the fig_chaos worker-failure drill
#                 (zero lost requests, recovery within budget) and compare
#                 recovery time against
#                 bench/baselines/BENCH_chaos_baseline.json
#                 (mirrors the ci.yml chaos job)
set -euo pipefail

cd "$(dirname "$0")/.."

run_tsan=1
run_asan=0
run_perf=0
run_chaos=0
for arg in "$@"; do
  case "$arg" in
    --no-tsan) run_tsan=0 ;;
    --asan) run_asan=1 ;;
    --perf-smoke) run_perf=1 ;;
    --chaos) run_chaos=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "==> api: removed pre-unification submission surface stays gone"
# The old API (SyncEngine::TakeOutputs, EffectiveAdmission, loose
# ServerOptions admission fields, positional deadline/terminate arguments)
# was deprecated for one release and is now removed. Nothing in-tree —
# sources and headers, including the conformance test — may mention it.
# DeviceEvent::TakeOutputs() is the (different) live API; the removed
# SyncEngine member was a dot-call, hence the '\.TakeOutputs(' pattern.
deprecated=$(grep -rn --include='*.cc' --include='*.cpp' --include='*.h' \
    -e '\.TakeOutputs(' \
    -e 'EffectiveAdmission(' \
    -e '\.queue_timeout_micros *=' \
    -e '\.max_queued_requests *=' \
    -e '/\*terminate=\*/' \
    src examples bench tests tools \
    | grep -v 'admission\.' || true)
if [[ -n "$deprecated" ]]; then
  echo "removed API usage found (migrate to SubmitOptions / EngineOptions.admission):" >&2
  echo "$deprecated" >&2
  exit 1
fi

echo "==> sim: no wall-clock reads inside deterministic virtual-time paths"
# The simulator's timeline (and the slack policy's launch instants inside
# it) must be a pure function of the event queue: a steady_clock read in
# these files would silently break resumable, bit-reproducible runs.
wallclock=$(grep -n \
    -e 'steady_clock' -e 'system_clock' -e 'high_resolution_clock' \
    -e 'NowMicros' \
    src/core/sim_engine.cc src/runtime/sim_worker.cc src/runtime/event_queue.cc \
    || true)
if [[ -n "$wallclock" ]]; then
  echo "wall-clock read inside a virtual-time path (use events_.Now()):" >&2
  echo "$wallclock" >&2
  exit 1
fi

echo "==> tier-1: clean configure + build + ctest"
rm -rf build-check
cmake -B build-check -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-check -j "$(nproc)"
ctest --test-dir build-check --output-on-failure -j "$(nproc)"

if [[ "$run_tsan" == 1 ]]; then
  echo "==> tsan: concurrency tests under -fsanitize=thread"
  rm -rf build-tsan
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
  cmake --build build-tsan -j "$(nproc)" \
    --target server_test obs_test thread_pool_test determinism_test \
    robustness_test sharding_test api_conformance_test numa_placement_test \
    watchdog_test util_test device_test
  ctest --test-dir build-tsan --output-on-failure \
    -R 'server_test|obs_test|thread_pool_test|determinism_test|robustness_test|sharding_test|api_conformance_test|numa_placement_test|watchdog_test|util_test|device_test'
fi

if [[ "$run_asan" == 1 ]]; then
  echo "==> asan: concurrency tests under -fsanitize=address,undefined"
  rm -rf build-asan
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" >/dev/null
  cmake --build build-asan -j "$(nproc)" \
    --target server_test obs_test thread_pool_test determinism_test \
    robustness_test cancellation_test sharding_test api_conformance_test \
    numa_placement_test watchdog_test util_test device_test
  ctest --test-dir build-asan --output-on-failure \
    -R 'server_test|obs_test|thread_pool_test|determinism_test|robustness_test|cancellation_test|sharding_test|api_conformance_test|numa_placement_test|watchdog_test|util_test|device_test'
fi

if [[ "$run_perf" == 1 ]]; then
  echo "==> perf-smoke: fig07 + overload points vs committed baseline"
  cmake --build build-check -j "$(nproc)" --target fig07_lstm_throughput_latency fig_overload
  (cd build-check && ./bench/fig07_lstm_throughput_latency --smoke --out BENCH_fig07.json)
  (cd build-check && ./bench/fig_overload --smoke --out BENCH_overload.json)
  python3 tools/compare_bench.py \
    bench/baselines/BENCH_fig07_baseline.json \
    build-check/BENCH_fig07.json \
    --metric p50_ms:0.25 --metric p99_ms:0.5 \
    --assert-ratio tasks_per_sec:shards=2,workers=4:shards=1,workers=4:1.5 \
    --min-cores 4

  echo "==> perf-smoke: SLA-aware batch formation vs greedy at fixed p99 SLA"
  (cd build-check && ./bench/fig_overload --smoke --slack --out BENCH_slack.json)
  # Within-run gates: at 2x overload, slack-aware formation must hold
  # goodput-at-SLA at least at greedy's level, and serve (not shed) at
  # least as large a fraction of the offered load (0.95 absorbs run-to-run
  # Poisson jitter). Gated on --min-cores 2 so single-core hosts skip
  # loudly (the manager and worker threads need their own cores for
  # latency numbers to mean anything).
  python3 tools/compare_bench.py \
    bench/baselines/BENCH_slack_baseline.json \
    build-check/BENCH_slack.json \
    --keys load,slack \
    --metric p99_ms:0.75 \
    --assert-ratio goodput_sla_rps:slack=1,load=2:slack=0,load=2:1.0 \
    --assert-ratio served_rate:slack=1,load=2:slack=0,load=2:0.95 \
    --min-cores 2

  echo "==> perf-smoke: NUMA placement A/B vs committed baseline"
  # Rows match by policy alone (worker/shard counts scale with the host's
  # topology). The pin+replicate-vs-none ratio gate is skipped loudly below
  # --min-nodes 2, where all three policies coincide by construction.
  cmake --build build-check -j "$(nproc)" --target abl_locality
  (cd build-check && ./bench/abl_locality --numa-only --smoke --out BENCH_numa.json)
  python3 tools/compare_bench.py \
    bench/baselines/BENCH_numa_baseline.json \
    build-check/BENCH_numa.json \
    --keys policy \
    --metric p50_ms:1.0 \
    --assert-ratio "tasks_per_sec:policy=pin+replicate:policy=none:1.2" \
    --min-cores 2 --min-nodes 2
fi

if [[ "$run_chaos" == 1 ]]; then
  echo "==> chaos: worker hang/kill drill, watchdog quarantine + recovery"
  # fig_chaos gates zero lost requests, drill firing, and recovery within
  # the budget internally (non-zero exit on any violation); compare_bench
  # then tracks recovery-time and p99-blip regressions against the
  # committed baseline (hang + exit rows only — the control row has no
  # recovery to compare). The exit-mode recovery is probe-timing-dominated
  # (single-digit ms), hence the wide recovery threshold.
  cmake --build build-check -j "$(nproc)" --target fig_chaos
  (cd build-check && ./bench/fig_chaos --smoke --recovery-budget-ms 2000 \
      --out BENCH_chaos.json)
  python3 tools/compare_bench.py \
    bench/baselines/BENCH_chaos_baseline.json \
    build-check/BENCH_chaos.json \
    --keys mode \
    --metric recovery_ms:9.0 --metric p99_ms:1.5 \
    --min-cores 2
fi

echo "==> all checks passed"
