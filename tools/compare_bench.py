#!/usr/bin/env python3
"""Compare a BENCH_*.json run against a committed baseline.

Both files use the shared envelope {"bench": name, "results": [rows]}
(see bench/bench_common.h). Rows are matched by a key tuple (default:
rate_rps + pipeline_depth, the fig07 sweep axes) and the run fails if any
watched metric regresses by more than its threshold relative to the
baseline.

--metric is repeatable and takes an optional per-metric threshold after a
colon; a metric without one uses --threshold. The CI perf-smoke job runs:

    tools/compare_bench.py bench/baselines/BENCH_fig07_baseline.json \
        build/BENCH_fig07.json --metric p50_ms:0.25 --metric p99_ms:0.5

Exit codes: 0 ok, 1 regression, 2 usage/format error. Only stdlib.
"""

import argparse
import json
import sys


def load_rows(path, keys):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if "bench" not in doc or "results" not in doc:
        sys.exit(f"error: {path} is not a BENCH envelope "
                 '(expected {"bench": ..., "results": [...]})')
    rows = {}
    for row in doc["results"]:
        try:
            key = tuple(row[k] for k in keys)
        except KeyError as e:
            sys.exit(f"error: {path}: row missing key field {e}: {row}")
        if key in rows:
            sys.exit(f"error: {path}: duplicate row for {dict(zip(keys, key))}")
        rows[key] = row
    return doc["bench"], rows


def parse_metrics(specs, default_threshold):
    """[(metric, threshold)] from repeated "name" or "name:threshold" specs."""
    metrics = []
    for spec in specs:
        name, sep, thr = spec.partition(":")
        if not name:
            sys.exit(f"error: empty metric name in {spec!r}")
        if sep:
            try:
                threshold = float(thr)
            except ValueError:
                sys.exit(f"error: bad threshold in metric spec {spec!r}")
        else:
            threshold = default_threshold
        metrics.append((name, threshold))
    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline BENCH json")
    parser.add_argument("current", help="freshly produced BENCH json")
    parser.add_argument("--metric", action="append", default=None,
                        help="row field to compare (lower is better); "
                             "repeatable, optional ':threshold' suffix")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="default max allowed relative regression "
                             "(0.25 = +25%%) for metrics without their own")
    parser.add_argument("--keys", default="rate_rps,pipeline_depth",
                        help="comma-separated row fields forming the match key")
    args = parser.parse_args()

    metrics = parse_metrics(args.metric or ["p50_ms"], args.threshold)
    keys = [k for k in args.keys.split(",") if k]
    base_name, base = load_rows(args.baseline, keys)
    cur_name, cur = load_rows(args.current, keys)
    if base_name != cur_name:
        sys.exit(f"error: bench name mismatch: baseline={base_name!r} "
                 f"current={cur_name!r}")

    missing = sorted(set(base) - set(cur))
    if missing:
        sys.exit(f"error: current run is missing baseline rows: "
                 f"{[dict(zip(keys, k)) for k in missing]}")

    failed = False
    for metric, threshold in metrics:
        print(f"{metric} vs baseline ({args.baseline}), "
              f"threshold +{threshold:.0%}:")
        for key in sorted(base):
            ref = base[key].get(metric)
            got = cur[key].get(metric)
            if not isinstance(ref, (int, float)) or not isinstance(got, (int, float)):
                sys.exit(f"error: metric {metric!r} missing or non-numeric "
                         f"for row {dict(zip(keys, key))}")
            if ref <= 0:
                sys.exit(f"error: baseline {metric} <= 0 for row "
                         f"{dict(zip(keys, key))}")
            delta = got / ref - 1.0
            verdict = "FAIL" if delta > threshold else "ok"
            failed |= delta > threshold
            label = " ".join(f"{k}={v}" for k, v in zip(keys, key))
            print(f"  {verdict:>4}  {label:<40} {ref:10.3f} -> {got:10.3f} "
                  f"({delta:+7.1%})")
    if failed:
        print("regression detected", file=sys.stderr)
        return 1
    print("no regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
