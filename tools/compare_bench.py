#!/usr/bin/env python3
"""Compare a BENCH_*.json run against a committed baseline.

Both files use the shared envelope {"bench": name, "results": [rows]}
(see bench/bench_common.h). Rows are matched by a key tuple (default:
rate_rps + pipeline_depth, the fig07 sweep axes) and the run fails if the
watched metric regresses by more than --threshold relative to the baseline.

The CI perf-smoke job runs:
    tools/compare_bench.py bench/baselines/BENCH_fig07_baseline.json \
        build/BENCH_fig07.json --metric p50_ms --threshold 0.25

Exit codes: 0 ok, 1 regression, 2 usage/format error. Only stdlib.
"""

import argparse
import json
import sys


def load_rows(path, keys):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if "bench" not in doc or "results" not in doc:
        sys.exit(f"error: {path} is not a BENCH envelope "
                 '(expected {"bench": ..., "results": [...]})')
    rows = {}
    for row in doc["results"]:
        try:
            key = tuple(row[k] for k in keys)
        except KeyError as e:
            sys.exit(f"error: {path}: row missing key field {e}: {row}")
        if key in rows:
            sys.exit(f"error: {path}: duplicate row for {dict(zip(keys, key))}")
        rows[key] = row
    return doc["bench"], rows


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline BENCH json")
    parser.add_argument("current", help="freshly produced BENCH json")
    parser.add_argument("--metric", default="p50_ms",
                        help="row field to compare (lower is better)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed relative regression (0.25 = +25%%)")
    parser.add_argument("--keys", default="rate_rps,pipeline_depth",
                        help="comma-separated row fields forming the match key")
    args = parser.parse_args()

    keys = [k for k in args.keys.split(",") if k]
    base_name, base = load_rows(args.baseline, keys)
    cur_name, cur = load_rows(args.current, keys)
    if base_name != cur_name:
        sys.exit(f"error: bench name mismatch: baseline={base_name!r} "
                 f"current={cur_name!r}")

    missing = sorted(set(base) - set(cur))
    if missing:
        sys.exit(f"error: current run is missing baseline rows: "
                 f"{[dict(zip(keys, k)) for k in missing]}")

    failed = False
    print(f"{args.metric} vs baseline ({args.baseline}), "
          f"threshold +{args.threshold:.0%}:")
    for key in sorted(base):
        ref = base[key].get(args.metric)
        got = cur[key].get(args.metric)
        if not isinstance(ref, (int, float)) or not isinstance(got, (int, float)):
            sys.exit(f"error: metric {args.metric!r} missing or non-numeric "
                     f"for row {dict(zip(keys, key))}")
        if ref <= 0:
            sys.exit(f"error: baseline {args.metric} <= 0 for row "
                     f"{dict(zip(keys, key))}")
        delta = got / ref - 1.0
        verdict = "FAIL" if delta > args.threshold else "ok"
        failed |= delta > args.threshold
        label = " ".join(f"{k}={v}" for k, v in zip(keys, key))
        print(f"  {verdict:>4}  {label:<40} {ref:10.3f} -> {got:10.3f} "
              f"({delta:+7.1%})")
    if failed:
        print("regression detected", file=sys.stderr)
        return 1
    print("no regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
