#!/usr/bin/env python3
"""Compare a BENCH_*.json run against a committed baseline.

Both files use the shared envelope {"bench": name, "results": [rows]}
(see bench/bench_common.h). Rows are matched by a key tuple (default:
rate_rps + pipeline_depth + shards + workers + precision, the fig07 sweep
axes; rows written before the precision field existed count as fp32) and
the run fails if any watched metric regresses by more than its threshold
relative to the baseline.

--metric is repeatable and takes an optional per-metric threshold after a
colon; a metric without one uses --threshold.

--assert-ratio gates a *scaling* property of the current run alone
(higher is better), e.g. the sharded manager's task throughput:

    --assert-ratio tasks_per_sec:shards=2,workers=4:shards=1,workers=4:1.5

reads "the tasks_per_sec of the row matching shards=2,workers=4 must be
at least 1.5x that of the row matching shards=1,workers=4". Each
selector must match exactly one current row. Because scaling ratios are
meaningless on a host with fewer cores than the configuration needs,
--min-cores N skips (loudly) every --assert-ratio check when
os.cpu_count() < N. --min-cores also skips the baseline metric
comparisons: committed baselines are recorded on adequately sized
hosts, so absolute latency numbers from an undersized host are
time-sharing artifacts, not regressions (the unmodified seed fails
them just the same). A skipped run still validates both files and
baseline row coverage; it just doesn't compare numbers. Similarly,
--min-nodes N skips (loudly) every --assert-ratio check when the current
run's "topology" header (written by bench_common.h) reports fewer NUMA
nodes — the NUMA placement speedup gate only means something on a
multi-socket host. A run without a topology header counts as 1 node.

The CI perf-smoke job runs:

    tools/compare_bench.py bench/baselines/BENCH_fig07_baseline.json \
        build/BENCH_fig07.json --metric p50_ms:0.25 --metric p99_ms:0.5 \
        --assert-ratio tasks_per_sec:shards=2,workers=4:shards=1,workers=4:1.5 \
        --assert-ratio "tasks_per_sec:precision=int8,workers=1,rate_rps=0:\
precision=fp32,workers=1,rate_rps=0:1.5:require-kernel=vnni" \
        --min-cores 4

An --assert-ratio may carry a 5th part, require-kernel=substr: the check
is skipped loudly (instead of failing) when the numerator row's "kernel"
field lacks the substring — the int8-vs-fp32 speedup gate only holds on
hosts whose cpuid dispatched a VNNI kernel.

Exit codes: 0 ok, 1 regression, 2 usage/format error. Only stdlib.
"""

import argparse
import json
import os
import sys


def load_rows(path, keys):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if "bench" not in doc or "results" not in doc:
        sys.exit(f"error: {path} is not a BENCH envelope "
                 '(expected {"bench": ..., "results": [...]})')
    rows = {}
    for row in doc["results"]:
        try:
            # Rows written before the precision axis existed are fp32.
            key = tuple(row.get(k, "fp32") if k == "precision" else row[k]
                        for k in keys)
        except KeyError as e:
            sys.exit(f"error: {path}: row missing key field {e}: {row}")
        if key in rows:
            sys.exit(f"error: {path}: duplicate row for {dict(zip(keys, key))}")
        rows[key] = row
    return doc["bench"], rows, doc


def parse_metrics(specs, default_threshold):
    """[(metric, threshold)] from repeated "name" or "name:threshold" specs."""
    metrics = []
    for spec in specs:
        name, sep, thr = spec.partition(":")
        if not name:
            sys.exit(f"error: empty metric name in {spec!r}")
        if sep:
            try:
                threshold = float(thr)
            except ValueError:
                sys.exit(f"error: bad threshold in metric spec {spec!r}")
        else:
            threshold = default_threshold
        metrics.append((name, threshold))
    return metrics


def parse_selector(text):
    """{"shards": 2.0, "precision": "int8"} from "shards=2,precision=int8".

    Values parse as floats when they can (so 2 matches 2.0 in the JSON) and
    stay strings otherwise (precision/kernel fields).
    """
    selector = {}
    for part in text.split(","):
        field, sep, value = part.partition("=")
        if not sep or not field:
            sys.exit(f"error: bad selector component {part!r} in {text!r} "
                     "(want field=value)")
        try:
            selector[field] = float(value)
        except ValueError:
            selector[field] = value
    return selector


def parse_ratios(specs):
    """[(metric, num_selector, den_selector, min_ratio, require_kernel)] from
    repeated "metric:num_sel:den_sel:min[:require-kernel=substr]" specs.

    The optional 5th part gates the check on the dispatched GEMM kernel: if
    the numerator row's "kernel" field does not contain the substring, the
    check is skipped loudly instead of failing (e.g. the int8-vs-fp32
    speedup ratio only means something when the host dispatched a VNNI
    kernel, not the avx2/scalar fallback)."""
    ratios = []
    for spec in specs:
        parts = spec.split(":")
        if len(parts) not in (4, 5):
            sys.exit(f"error: bad --assert-ratio spec {spec!r} "
                     "(want metric:num_selector:den_selector:min_ratio"
                     "[:require-kernel=substr])")
        metric, num_text, den_text, min_text = parts[:4]
        require_kernel = None
        if len(parts) == 5:
            field, sep, value = parts[4].partition("=")
            if field != "require-kernel" or not sep or not value:
                sys.exit(f"error: bad 5th part in --assert-ratio spec {spec!r} "
                         "(want require-kernel=substr)")
            require_kernel = value
        try:
            min_ratio = float(min_text)
        except ValueError:
            sys.exit(f"error: bad min ratio in {spec!r}")
        ratios.append((metric, parse_selector(num_text), parse_selector(den_text),
                       min_ratio, require_kernel))
    return ratios


def row_matches(row, selector):
    for field, want in selector.items():
        have = row.get(field)
        if isinstance(want, float):
            if not isinstance(have, (int, float)) or float(have) != want:
                return False
        elif str(have) != want:
            return False
    return True


def select_row(rows, selector, spec_label):
    """The single row whose fields match the selector, else exit."""
    matches = [row for row in rows.values() if row_matches(row, selector)]
    if len(matches) != 1:
        sys.exit(f"error: selector {spec_label!r} matched {len(matches)} rows "
                 f"(need exactly 1)")
    return matches[0]


def check_ratios(ratios, cur, min_cores, min_nodes=0, cur_nodes=1):
    cores = os.cpu_count() or 1
    if min_cores and cores < min_cores:
        for metric, num_sel, den_sel, min_ratio, _ in ratios:
            print(f"SKIPPED: --assert-ratio {metric} >= {min_ratio}x "
                  f"({num_sel} vs {den_sel}): this host has {cores} core(s), "
                  f"below --min-cores {min_cores}. The scaling gate only "
                  "means something with enough cores to scale onto; run it "
                  "on a larger machine.")
        return False
    if min_nodes and cur_nodes < min_nodes:
        for metric, num_sel, den_sel, min_ratio, _ in ratios:
            print(f"SKIPPED: --assert-ratio {metric} >= {min_ratio}x "
                  f"({num_sel} vs {den_sel}): the current run reports "
                  f"{cur_nodes} NUMA node(s) in its topology header, below "
                  f"--min-nodes {min_nodes}. NUMA placement gates only mean "
                  "something on a multi-socket host; run it on one.")
        return False
    failed = False
    for metric, num_sel, den_sel, min_ratio, require_kernel in ratios:
        num_row = select_row(cur, num_sel, str(num_sel))
        den_row = select_row(cur, den_sel, str(den_sel))
        if require_kernel is not None:
            kernel = str(num_row.get("kernel", ""))
            if require_kernel not in kernel:
                print(f"SKIPPED: --assert-ratio {metric} >= {min_ratio}x "
                      f"({num_sel} vs {den_sel}): the run's dispatched kernel "
                      f"is {kernel!r}, which lacks required substring "
                      f"{require_kernel!r}. This speedup gate only means "
                      "something on a host whose cpuid selects that kernel "
                      "family; run it on such a machine.")
                continue
        num = num_row.get(metric)
        den = den_row.get(metric)
        if not isinstance(num, (int, float)) or not isinstance(den, (int, float)):
            sys.exit(f"error: ratio metric {metric!r} missing or non-numeric")
        if den <= 0:
            sys.exit(f"error: ratio denominator {metric} <= 0 for {den_sel}")
        ratio = num / den
        verdict = "ok" if ratio >= min_ratio else "FAIL"
        failed |= ratio < min_ratio
        print(f"{verdict:>4}  {metric} ratio {num_sel} / {den_sel}: "
              f"{num:.3f} / {den:.3f} = {ratio:.2f}x (need >= {min_ratio}x)")
    return failed


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline BENCH json")
    parser.add_argument("current", help="freshly produced BENCH json")
    parser.add_argument("--metric", action="append", default=None,
                        help="row field to compare (lower is better); "
                             "repeatable, optional ':threshold' suffix")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="default max allowed relative regression "
                             "(0.25 = +25%%) for metrics without their own")
    parser.add_argument("--keys",
                        default="rate_rps,pipeline_depth,shards,workers,precision",
                        help="comma-separated row fields forming the match key "
                             "(a row without a precision field counts as fp32)")
    parser.add_argument("--assert-ratio", action="append", default=None,
                        help="metric:num_selector:den_selector:min_ratio — "
                             "assert a higher-is-better ratio between two "
                             "rows of the *current* run (repeatable)")
    parser.add_argument("--min-cores", type=int, default=0,
                        help="skip --assert-ratio checks and baseline metric "
                             "comparisons (loudly) when os.cpu_count() is "
                             "below this")
    parser.add_argument("--min-nodes", type=int, default=0,
                        help="skip --assert-ratio checks (loudly) when the "
                             "current run's topology header reports fewer "
                             "NUMA nodes than this")
    args = parser.parse_args()

    metrics = parse_metrics(args.metric or ["p50_ms"], args.threshold)
    keys = [k for k in args.keys.split(",") if k]
    base_name, base, _ = load_rows(args.baseline, keys)
    cur_name, cur, cur_doc = load_rows(args.current, keys)
    if base_name != cur_name:
        sys.exit(f"error: bench name mismatch: baseline={base_name!r} "
                 f"current={cur_name!r}")

    missing = sorted(set(base) - set(cur))
    if missing:
        sys.exit(f"error: current run is missing baseline rows: "
                 f"{[dict(zip(keys, k)) for k in missing]}")

    failed = False
    cores = os.cpu_count() or 1
    if args.min_cores and cores < args.min_cores:
        for metric, threshold in metrics:
            print(f"SKIPPED: {metric} vs baseline (threshold "
                  f"+{threshold:.0%}): this host has {cores} core(s), below "
                  f"--min-cores {args.min_cores}. The baseline was recorded "
                  "on an adequately sized host, so absolute numbers here are "
                  "time-sharing artifacts; compare against a same-host "
                  "re-measured baseline or run on a larger machine.")
        metrics = []
    for metric, threshold in metrics:
        print(f"{metric} vs baseline ({args.baseline}), "
              f"threshold +{threshold:.0%}:")
        for key in sorted(base):
            ref = base[key].get(metric)
            got = cur[key].get(metric)
            if not isinstance(ref, (int, float)) or not isinstance(got, (int, float)):
                sys.exit(f"error: metric {metric!r} missing or non-numeric "
                         f"for row {dict(zip(keys, key))}")
            if ref <= 0:
                sys.exit(f"error: baseline {metric} <= 0 for row "
                         f"{dict(zip(keys, key))}")
            delta = got / ref - 1.0
            verdict = "FAIL" if delta > threshold else "ok"
            failed |= delta > threshold
            label = " ".join(f"{k}={v}" for k, v in zip(keys, key))
            print(f"  {verdict:>4}  {label:<40} {ref:10.3f} -> {got:10.3f} "
                  f"({delta:+7.1%})")

    if args.assert_ratio:
        cur_nodes = cur_doc.get("topology", {}).get("nodes", 1)
        failed |= check_ratios(parse_ratios(args.assert_ratio), cur,
                               args.min_cores, args.min_nodes, cur_nodes)

    if failed:
        print("regression detected", file=sys.stderr)
        return 1
    print("no regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
